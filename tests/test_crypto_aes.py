"""AES block cipher: FIPS 197 known-answer tests and properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.aes import AES, BLOCK_SIZE

# FIPS 197 Appendix C vectors: (key, plaintext, ciphertext).
_FIPS_VECTORS = [
    (
        "000102030405060708090a0b0c0d0e0f",
        "00112233445566778899aabbccddeeff",
        "69c4e0d86a7b0430d8cdb78070b4c55a",
    ),
    (
        "000102030405060708090a0b0c0d0e0f1011121314151617",
        "00112233445566778899aabbccddeeff",
        "dda97ca4864cdfe06eaf70a0ec0d7191",
    ),
    (
        "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
        "00112233445566778899aabbccddeeff",
        "8ea2b7ca516745bfeafc49904b496089",
    ),
]


@pytest.mark.parametrize("key_hex,pt_hex,ct_hex", _FIPS_VECTORS)
def test_fips197_encrypt(key_hex, pt_hex, ct_hex):
    cipher = AES(bytes.fromhex(key_hex))
    assert cipher.encrypt_block(bytes.fromhex(pt_hex)).hex() == ct_hex


@pytest.mark.parametrize("key_hex,pt_hex,ct_hex", _FIPS_VECTORS)
def test_fips197_decrypt(key_hex, pt_hex, ct_hex):
    cipher = AES(bytes.fromhex(key_hex))
    assert cipher.decrypt_block(bytes.fromhex(ct_hex)).hex() == pt_hex


def test_sp800_38a_ecb_vector():
    # SP 800-38A F.1.1 first block.
    cipher = AES(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
    pt = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
    assert cipher.encrypt_block(pt).hex() == "3ad77bb40d7a3660a89ecaf32466ef97"


@pytest.mark.parametrize("key_len,rounds", [(16, 10), (24, 12), (32, 14)])
def test_round_counts(key_len, rounds):
    assert AES(bytes(key_len)).rounds == rounds


@pytest.mark.parametrize("bad_len", [0, 1, 15, 17, 20, 33, 64])
def test_rejects_bad_key_lengths(bad_len):
    with pytest.raises(ValueError, match="key must be"):
        AES(bytes(bad_len))


@pytest.mark.parametrize("bad_len", [0, 15, 17, 32])
def test_rejects_bad_block_lengths(bad_len):
    cipher = AES(bytes(16))
    with pytest.raises(ValueError, match="block must be"):
        cipher.encrypt_block(bytes(bad_len))
    with pytest.raises(ValueError, match="block must be"):
        cipher.decrypt_block(bytes(bad_len))


@given(
    key=st.binary(min_size=16, max_size=16),
    block=st.binary(min_size=16, max_size=16),
)
def test_decrypt_inverts_encrypt_128(key, block):
    cipher = AES(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


@given(
    key=st.binary(min_size=32, max_size=32),
    block=st.binary(min_size=16, max_size=16),
)
def test_decrypt_inverts_encrypt_256(key, block):
    cipher = AES(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


@given(key=st.binary(min_size=16, max_size=16))
def test_encryption_changes_block(key):
    # AES has no fixed points we'd stumble on by chance.
    block = bytes(BLOCK_SIZE)
    assert AES(key).encrypt_block(block) != block


def test_key_property_round_trips():
    key = bytes(range(16))
    assert AES(key).key == key


def test_different_keys_different_ciphertexts():
    block = b"0123456789abcdef"
    assert AES(bytes(16)).encrypt_block(block) != AES(
        bytes([1]) + bytes(15)
    ).encrypt_block(block)
