"""Integration: the full ten-app study must regenerate the paper's
Table I cell for cell, and the Figure 1 message sequence must match."""

import pytest

from repro.core.figures import FIGURE_1_ARROWS, collapse_decode_loop
from repro.core.legacy_probe import LegacyOutcome
from repro.core.report import EXPECTED_PAPER_TABLE
from repro.license_server.policy import KeyUsagePolicy
from repro.media.player import AssetStatus
from repro.ott.registry import ALL_PROFILES


class TestTableOne:
    def test_row_count(self, study_result):
        assert len(study_result.table.rows) == 10

    def test_matches_paper_exactly(self, study_result):
        assert study_result.table.diff_against_paper() == []
        assert study_result.table.matches_paper

    @pytest.mark.parametrize("app_name", list(EXPECTED_PAPER_TABLE))
    def test_each_row(self, study_result, app_name):
        assert study_result.table.row_for(app_name) == EXPECTED_PAPER_TABLE[app_name]

    def test_render_contains_all_apps(self, study_result):
        rendered = study_result.table.render()
        for profile in ALL_PROFILES:
            assert profile.name in rendered


class TestQ1Findings:
    def test_all_apps_use_widevine(self, study_result):
        """§IV-C Q1: 'All the evaluated apps depend on Widevine'."""
        for name, app in study_result.apps.items():
            assert app.audit.observation.widevine_used, name

    def test_l1_popular_on_modern_device(self, study_result):
        for name, app in study_result.apps.items():
            assert app.audit.observation.security_level == "L1", name

    def test_static_analysis_confirms_drm_api(self, study_result):
        for name, app in study_result.apps.items():
            assert app.static.uses_android_drm_api, name


class TestQ2Findings:
    def test_video_always_encrypted(self, study_result):
        for name, app in study_result.apps.items():
            assert app.audit.status_for("video") is AssetStatus.ENCRYPTED, name

    def test_clear_audio_trio(self, study_result):
        """Netflix, myCanal and Salto deliver audio in clear."""
        clear_audio = {
            name
            for name, app in study_result.apps.items()
            if app.audit.status_for("audio") is AssetStatus.CLEAR
        }
        assert clear_audio == {"Netflix", "myCanal", "Salto"}

    def test_subtitles_never_encrypted(self, study_result):
        for name, app in study_result.apps.items():
            status = app.audit.status_for("text")
            assert status in (AssetStatus.CLEAR, None), name

    def test_subtitle_gaps_match_paper(self, study_result):
        missing = {
            name
            for name, app in study_result.apps.items()
            if app.audit.status_for("text") is None
        }
        assert missing == {"Hulu", "Starz"}

    def test_netflix_secure_channel_recovered(self, study_result):
        netflix = study_result.apps["Netflix"]
        assert netflix.audit.secure_channel_manifest_recovered

    def test_only_netflix_uses_secure_channel(self, study_result):
        for name, app in study_result.apps.items():
            if name != "Netflix":
                assert not app.audit.secure_channel_manifest_recovered, name


class TestQ3Findings:
    def test_amazon_only_recommended(self, study_result):
        recommended = {
            name
            for name, app in study_result.apps.items()
            if app.key_usage.classification is KeyUsagePolicy.RECOMMENDED
        }
        assert recommended == {"Amazon Prime Video"}

    def test_regional_gaps(self, study_result):
        unknown = {
            name
            for name, app in study_result.apps.items()
            if app.key_usage.classification is None
        }
        assert unknown == {"Hulu", "HBO Max"}

    def test_video_keys_distinct_everywhere_attributable(self, study_result):
        """'all evaluated OTT apps properly encrypt their videos with
        different keys depending on the resolution'."""
        for name, app in study_result.apps.items():
            if app.key_usage.classification is not None:
                assert app.key_usage.video_keys_distinct_per_resolution, name


class TestQ4Findings:
    def test_revoking_trio_fails_provisioning(self, study_result):
        failed = {
            name
            for name, app in study_result.apps.items()
            if app.legacy.outcome is LegacyOutcome.PROVISIONING_FAILED
        }
        assert failed == {"Disney+", "HBO Max", "Starz"}

    def test_seven_apps_serve_the_nexus5(self, study_result):
        served = {
            name
            for name, app in study_result.apps.items()
            if app.legacy.content_delivered
        }
        assert len(served) == 7
        assert "Amazon Prime Video" in served

    def test_amazon_uses_custom_drm_on_legacy(self, study_result):
        amazon = study_result.apps["Amazon Prime Video"]
        assert amazon.legacy.outcome is LegacyOutcome.PLAYS_CUSTOM_DRM

    def test_legacy_playback_capped_at_qhd(self, study_result):
        for name, app in study_result.apps.items():
            if app.legacy.content_delivered:
                assert app.legacy.video_height == 540, name


class TestFigureOne:
    """The playback message sequence of Figure 1."""

    def test_playback_trace_matches_figure(self, full_study):
        from repro.ott.app import OttApp
        from repro.ott.registry import profile_by_name

        profile = profile_by_name("Showtime")
        device = full_study.l1_device
        app = OttApp(profile, device, full_study.backends[profile.service])
        app.play()  # provision + warm up
        device.trace.clear()
        result = app.play()
        assert result.ok

        deduped = collapse_decode_loop(device.trace.labels())
        assert tuple(deduped) == FIGURE_1_ARROWS
