"""Synthetic codec bitstreams: generation, validation, tamper detection."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.media.codecs import (
    HEADER_LEN,
    SAMPLE_MAGIC,
    generate_sample,
    sample_header_length,
    validate_sample,
)


class TestGenerate:
    def test_deterministic(self):
        assert generate_sample("video", "t/v", 3, 100) == generate_sample(
            "video", "t/v", 3, 100
        )

    def test_sequence_separation(self):
        assert generate_sample("video", "t/v", 0, 64) != generate_sample(
            "video", "t/v", 1, 64
        )

    def test_label_separation(self):
        assert generate_sample("video", "t/a", 0, 64) != generate_sample(
            "video", "t/b", 0, 64
        )

    def test_header_prefix(self):
        sample = generate_sample("audio", "lbl", 0, 32)
        assert sample.startswith(SAMPLE_MAGIC)

    def test_total_length(self):
        sample = generate_sample("video", "lbl", 0, 100)
        assert len(sample) == HEADER_LEN + 100 + 8

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown sample kind"):
            generate_sample("hologram", "lbl", 0, 10)

    def test_label_too_long_rejected(self):
        with pytest.raises(ValueError, match="label too long"):
            generate_sample("video", "x" * 25, 0, 10)

    def test_max_length_label_ok(self):
        sample = generate_sample("video", "x" * 24, 0, 10)
        assert validate_sample(sample).valid


class TestValidate:
    @pytest.mark.parametrize("kind", ["video", "audio", "text"])
    def test_valid_sample(self, kind):
        result = validate_sample(generate_sample(kind, "t/x", 7, 50))
        assert result.valid
        assert result.kind == kind
        assert result.label == "t/x"
        assert result.sequence == 7

    def test_too_short(self):
        assert validate_sample(b"tiny").reason == "too short"

    def test_bad_magic(self):
        sample = bytearray(generate_sample("video", "l", 0, 50))
        sample[0] ^= 0xFF
        assert validate_sample(bytes(sample)).reason == "bad magic"

    def test_unknown_kind_byte(self):
        sample = bytearray(generate_sample("video", "l", 0, 50))
        sample[4] = 0x7A
        assert "unknown kind" in validate_sample(bytes(sample)).reason

    def test_truncated_payload(self):
        sample = generate_sample("video", "l", 0, 50)
        assert "length mismatch" in validate_sample(sample[:-4]).reason

    def test_payload_tamper_detected(self):
        sample = bytearray(generate_sample("video", "l", 0, 50))
        sample[HEADER_LEN + 10] ^= 1
        assert validate_sample(bytes(sample)).reason == "checksum mismatch"

    def test_checksum_tamper_detected(self):
        sample = bytearray(generate_sample("video", "l", 0, 50))
        sample[-1] ^= 1
        assert validate_sample(bytes(sample)).reason == "checksum mismatch"

    @given(noise=st.binary(min_size=50, max_size=120))
    def test_random_noise_rejected(self, noise):
        assert not validate_sample(noise).valid

    def test_header_length_helper(self):
        assert sample_header_length() == HEADER_LEN
