"""Reproducibility: the whole study is a pure function of the seed."""

from repro import WideLeakStudy


class TestDeterminism:
    def test_two_study_runs_are_bit_identical(self):
        first = WideLeakStudy.with_default_apps().run().to_json()
        second = WideLeakStudy.with_default_apps().run().to_json()
        assert first == second

    def test_attack_recovers_identical_keys_across_worlds(self):
        from repro.ott.registry import profile_by_name

        keys = []
        for _ in range(2):
            study = WideLeakStudy.with_default_apps()
            outcome = study.run_attack(profile_by_name("Showtime"))
            keys.append(
                sorted(
                    (kid.hex(), key.hex())
                    for kid, key in outcome.attack.content_keys.items()
                )
            )
        assert keys[0] == keys[1] and keys[0]


class TestTopLevelApi:
    def test_lazy_imports(self):
        import repro

        assert repro.WideLeakStudy is WideLeakStudy
        assert repro.TableOne.__name__ == "TableOne"
        assert repro.__version__ == "1.0.0"

    def test_unknown_attribute(self):
        import pytest
        import repro

        with pytest.raises(AttributeError):
            repro.not_a_thing
