"""Cross-layer observability: the bus must never perturb the study's
byte-identity contract, and every legacy channel must survive on it."""

from __future__ import annotations

import pytest

from repro.core.figures import capture_figure1, figure1_matches
from repro.core.monitor import DrmApiMonitor
from repro.core.parallel import ParallelStudyRunner
from repro.core.study import WideLeakStudy
from repro.obs.bus import ObservabilityBus
from repro.ott.app import OttApp
from repro.ott.registry import ALL_PROFILES, profile_by_name

SUBSET = ALL_PROFILES[:3]


class TestParallelEquivalence:
    @pytest.fixture(scope="class")
    def runs(self):
        sequential = ParallelStudyRunner(
            WideLeakStudy(profiles=SUBSET), jobs=1
        ).run()
        parallel = ParallelStudyRunner(
            WideLeakStudy(profiles=SUBSET), jobs=3
        ).run()
        return sequential, parallel

    def test_artifacts_are_byte_identical(self, runs):
        sequential, parallel = runs
        assert sequential.to_json() == parallel.to_json()

    def test_span_trees_are_structurally_equal(self, runs):
        """Per-worker buses merged in profile order reproduce the
        sequential recording span-for-span (timestamps aside)."""
        sequential, parallel = runs
        assert sequential.obs.trees() == parallel.obs.trees()
        assert sequential.obs.span_names() == parallel.obs.span_names()

    def test_counters_land_in_the_summary(self, runs):
        sequential, _ = runs
        counters = sequential.summary()["observability"]["counters"]
        assert counters["license.issued"] >= len(SUBSET)
        assert counters["flow.arrows"] > 0

    def test_metrics_table_renders(self, runs):
        sequential, _ = runs
        table = sequential.metrics_table()
        assert "license.issued" in table
        assert "span.study.app" in table


class TestDisabledBusStudy:
    def test_study_runs_and_summary_omits_observability(self):
        study = WideLeakStudy(
            profiles=SUBSET, obs=ObservabilityBus(enabled=False)
        )
        result = study.run()
        assert result.summary()["observability"] == {}
        assert study.obs.spans == []

    def test_figure1_is_identical_traced_and_untraced(self):
        """FlowTrace is a bus consumer now; Figure 1 must come out
        byte-identical whether the bus records or not."""
        profile = profile_by_name("OCS")

        def arrows(obs):
            study = WideLeakStudy(obs=obs)
            app = OttApp(
                profile, study.l1_device, study.backends[profile.service]
            )
            return capture_figure1(app)

        traced = arrows(None)  # default: enabled bus
        untraced = arrows(ObservabilityBus(enabled=False))
        assert traced == untraced
        assert figure1_matches(traced)


class TestMonitorDetachFlush:
    """Regression: tearing the hook session down used to discard the
    buffer dumps; detach must flush them into the bus first."""

    @pytest.fixture()
    def played_monitor(self):
        study = WideLeakStudy(profiles=SUBSET)
        profile = SUBSET[0]
        app = OttApp(
            profile, study.l1_device, study.backends[profile.service]
        )
        monitor = DrmApiMonitor(study.l1_device)
        monitor.attach()
        assert app.play().ok
        return study, monitor

    def _dump_events(self, study):
        return [e for e in study.obs.events if e.name == "oecc.dump"]

    def test_dumps_reach_the_bus_on_detach(self, played_monitor):
        study, monitor = played_monitor
        collected = len(monitor.oecc.dumps)
        assert collected > 0
        assert self._dump_events(study) == []  # not flushed yet
        monitor.detach()
        events = self._dump_events(study)
        assert len(events) == collected
        assert study.obs.metrics.counters()["oecc.dumps"] == collected
        # Size-only metadata: the dumped bytes themselves stay off the bus.
        assert all(set(e.attrs) == {"function", "direction", "size"} for e in events)

    def test_detach_is_idempotent(self, played_monitor):
        study, monitor = played_monitor
        collected = len(monitor.oecc.dumps)
        monitor.detach()
        monitor.detach()  # second detach: no session, no double flush
        assert len(self._dump_events(study)) == collected

    def test_incremental_flush_never_replays(self, played_monitor):
        study, monitor = played_monitor
        first = monitor.oecc.flush_dumps()
        assert first == len(monitor.oecc.dumps)
        assert monitor.oecc.flush_dumps() == 0  # nothing new
        monitor.detach()  # flushes the (empty) remainder
        assert len(self._dump_events(study)) == first
