"""Shared fixtures: a small self-contained service world, devices, and
a session-scoped full study run (expensive, reused by integration
tests)."""

from __future__ import annotations

import pytest

from repro.android.device import AndroidDevice, nexus_5, pixel_6
from repro.core.study import StudyResult, WideLeakStudy
from repro.dash.packager import PackagedTitle, Packager
from repro.license_server.policy import (
    AudioProtection,
    RevocationPolicy,
    ServicePolicy,
    assign_track_crypto,
)
from repro.license_server.provisioning import (
    KeyboxAuthority,
    ProvisioningRecords,
    ProvisioningServer,
)
from repro.license_server.server import LicenseServer
from repro.media.content import Title, make_title
from repro.net.cdn import CdnServer
from repro.net.network import Network


class ServiceWorld:
    """A minimal single-service universe for unit/integration tests."""

    def __init__(
        self,
        *,
        audio_protection: AudioProtection = AudioProtection.SHARED_KEY,
        revocation: RevocationPolicy | None = None,
        service: str = "acme",
    ):
        self.network = Network()
        self.authority = KeyboxAuthority()
        self.records = ProvisioningRecords()
        self.policy = ServicePolicy(
            service=service,
            audio_protection=audio_protection,
            revocation=revocation or RevocationPolicy(),
        )
        self.provisioning = ProvisioningServer(
            f"prov.{service}.example", self.authority, self.records,
            revocation=self.policy.revocation,
        )
        self.license_server = LicenseServer(
            f"license.{service}.example", self.policy, self.records
        )
        self.cdn = CdnServer(f"cdn.{service}.example")
        for server in (self.provisioning, self.license_server, self.cdn):
            self.network.register(server)

        self.title: Title = make_title(f"{service[:4]}00", "Test feature")
        crypto = assign_track_crypto(self.policy, self.title)
        self.packaged: PackagedTitle = Packager(service, self.cdn).package(
            self.title, crypto
        )
        self.license_server.register_packaged_title(self.packaged, self.title)

    def l1_device(self, serial: str = "P6-T01") -> AndroidDevice:
        device = pixel_6(self.network, self.authority, serial=serial)
        device.rooted = True
        return device

    def l3_device(self, serial: str = "N5-T01") -> AndroidDevice:
        device = nexus_5(self.network, self.authority, serial=serial)
        device.rooted = True
        return device


@pytest.fixture
def world() -> ServiceWorld:
    return ServiceWorld()


@pytest.fixture
def clear_audio_world() -> ServiceWorld:
    return ServiceWorld(audio_protection=AudioProtection.CLEAR, service="clrsvc")


@pytest.fixture(scope="session")
def full_study() -> WideLeakStudy:
    """One study instance shared by the integration tests."""
    return WideLeakStudy.with_default_apps()


@pytest.fixture(scope="session")
def study_result(full_study: WideLeakStudy) -> StudyResult:
    """The full ten-app study run (expensive; computed once)."""
    return full_study.run()
