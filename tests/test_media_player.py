"""Reference player: clear / encrypted / corrupt classification."""

import pytest

from repro.bmff.builder import build_init_segment, build_media_segment
from repro.bmff.cenc import encrypt_sample, iv_sequence
from repro.media.codecs import generate_sample, sample_header_length
from repro.media.player import AssetStatus, probe_subtitle, probe_track
from repro.media.subtitles import build_webvtt

_KEY = bytes(range(16))
_KID = bytes(16)


def _samples(count: int = 4) -> list[bytes]:
    return [generate_sample("video", "p/v", i, 80) for i in range(count)]


def _encrypted_pair():
    samples = _samples()
    ivs = iv_sequence(b"p", len(samples))
    enc = [
        encrypt_sample(s, _KEY, iv, clear_header=sample_header_length())
        for s, iv in zip(samples, ivs)
    ]
    init = build_init_segment(kind="video", codec="c", default_kid=_KID)
    return init, [build_media_segment(1, enc)]


class TestProbeTrack:
    def test_clear(self):
        init = build_init_segment(kind="video", codec="c")
        probe = probe_track(init, [build_media_segment(1, _samples())])
        assert probe.status is AssetStatus.CLEAR
        assert probe.samples_valid == probe.samples_total == 4
        assert not probe.declared_protected

    def test_encrypted(self):
        init, segments = _encrypted_pair()
        probe = probe_track(init, segments)
        assert probe.status is AssetStatus.ENCRYPTED
        assert probe.declared_protected
        assert probe.default_kid == _KID
        assert probe.samples_valid == 0

    def test_corrupt_container(self):
        probe = probe_track(b"garbage", [])
        assert probe.status is AssetStatus.CORRUPT

    def test_corrupt_segment(self):
        init = build_init_segment(kind="video", codec="c")
        probe = probe_track(init, [b"not a segment"])
        assert probe.status is AssetStatus.CORRUPT

    def test_clear_container_with_garbage_samples(self):
        init = build_init_segment(kind="video", codec="c")
        segment = build_media_segment(1, [b"\xde\xad\xbe\xef" * 30])
        probe = probe_track(init, [segment])
        assert probe.status is AssetStatus.CORRUPT

    def test_declared_protected_but_clear_is_flagged(self):
        # A packager bug: protected init, clear payloads.
        init = build_init_segment(kind="video", codec="c", default_kid=_KID)
        segment = build_media_segment(1, _samples())
        probe = probe_track(init, [segment])
        assert probe.status is AssetStatus.CLEAR
        assert any("declared protected" in note for note in probe.notes)

    def test_no_segments_encrypted_declaration(self):
        init = build_init_segment(kind="video", codec="c", default_kid=_KID)
        probe = probe_track(init, [])
        assert probe.status is AssetStatus.ENCRYPTED

    def test_kind_and_codec_reported(self):
        init = build_init_segment(kind="audio", codec="synaac")
        probe = probe_track(init, [])
        assert probe.kind == "audio"
        assert probe.codec == "synaac"


class TestProbeSubtitle:
    def test_clear_webvtt(self):
        assert probe_subtitle(build_webvtt("t", "en", 12)) is AssetStatus.CLEAR

    def test_encrypted_bytes(self):
        from repro.crypto.rng import derive_rng

        blob = derive_rng("subtitle-noise").generate(400)
        assert probe_subtitle(blob) is AssetStatus.ENCRYPTED

    def test_ascii_but_not_vtt(self):
        assert probe_subtitle(b"just some ascii text " * 10) is AssetStatus.CORRUPT


class TestCatalog:
    def test_default_catalog(self):
        from repro.media.catalog import default_catalog

        catalog = default_catalog("svc", title_count=3)
        assert len(catalog) == 3
        assert all(t.title_id.startswith("svc") for t in catalog)

    def test_duplicate_rejected(self):
        from repro.media.catalog import Catalog
        from repro.media.content import make_title

        catalog = Catalog(service="s")
        catalog.add(make_title("t1", "A"))
        with pytest.raises(ValueError, match="duplicate"):
            catalog.add(make_title("t1", "B"))

    def test_get_unknown(self):
        from repro.media.catalog import Catalog

        with pytest.raises(KeyError, match="unknown title"):
            Catalog(service="s").get("missing")

    def test_contains(self):
        from repro.media.catalog import Catalog
        from repro.media.content import make_title

        catalog = Catalog(service="s")
        catalog.add(make_title("t1", "A"))
        assert "t1" in catalog
        assert "t2" not in catalog
