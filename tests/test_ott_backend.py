"""OTT backend: auth, playback API, keymap geo-blocking, secure channel,
embedded licenses."""

import json

import pytest

from repro.license_server.policy import AudioProtection
from repro.license_server.provisioning import KeyboxAuthority
from repro.net.http import HttpRequest
from repro.net.network import Network
from repro.ott.backend import OttBackend
from repro.ott.profile import URI_SECURE_CHANNEL, OttProfile


def _profile(**overrides) -> OttProfile:
    defaults = dict(
        name="TestFlix",
        service="testflix",
        package="com.testflix.app",
        installs_millions=1,
        audio_protection=AudioProtection.SHARED_KEY,
        enforces_revocation=False,
    )
    defaults.update(overrides)
    return OttProfile(**defaults)


@pytest.fixture
def backend():
    return OttBackend(_profile(), Network(), KeyboxAuthority())


def _get(server, url):
    return server.handle(HttpRequest("GET", url))


def _post(server, url, body):
    return server.handle(HttpRequest("POST", url, body=body))


class TestInfrastructure:
    def test_all_origins_registered(self, backend):
        network = backend.api  # registered on the same network
        for host in backend.profile.all_hosts():
            # server_for raises if missing
            assert host

    def test_catalog_packaged_and_keys_registered(self, backend):
        title = next(iter(backend.catalog))
        packaged = backend.packaged[title.title_id]
        assert packaged.content_keys
        assert packaged.key_ids() <= backend.license_server.known_key_ids()

    def test_two_accounts_exist(self, backend):
        assert set(backend.accounts) == {"alice", "bob"}


class TestAuth:
    def test_login(self, backend):
        response = _post(
            backend.api,
            "https://api.testflix.example/auth",
            json.dumps({"username": "alice"}).encode(),
        )
        assert response.ok
        assert json.loads(response.body)["token"] == backend.accounts["alice"]

    def test_unknown_account(self, backend):
        response = _post(
            backend.api,
            "https://api.testflix.example/auth",
            json.dumps({"username": "mallory"}).encode(),
        )
        assert response.status == 403

    def test_malformed_auth(self, backend):
        response = _post(backend.api, "https://api.testflix.example/auth", b"{")
        assert response.status == 400


class TestPlaybackApi:
    def test_manifest_url_returned(self, backend):
        title = next(iter(backend.catalog))
        token = backend.accounts["alice"]
        response = _get(
            backend.api,
            f"https://api.testflix.example/playback?title={title.title_id}"
            f"&token={token}",
        )
        assert response.ok
        url = json.loads(response.body)["mpd_url"]
        assert url.endswith("manifest.mpd")

    def test_requires_token(self, backend):
        title = next(iter(backend.catalog))
        response = _get(
            backend.api,
            f"https://api.testflix.example/playback?title={title.title_id}",
        )
        assert response.status == 403

    def test_unknown_title(self, backend):
        token = backend.accounts["alice"]
        response = _get(
            backend.api,
            f"https://api.testflix.example/playback?title=nope&token={token}",
        )
        assert response.status == 404


class TestKeymap:
    def test_keymap_served(self, backend):
        title = next(iter(backend.catalog))
        token = backend.accounts["alice"]
        response = _get(
            backend.api,
            f"https://api.testflix.example/keymap?title={title.title_id}"
            f"&token={token}",
        )
        assert response.ok
        keymap = json.loads(response.body)
        packaged = backend.packaged[title.title_id]
        assert keymap["v540"] == packaged.kid_by_rep["v540"].hex()
        assert keymap["t-en"] is None

    def test_keymap_geoblocked(self):
        backend = OttBackend(
            _profile(service="geoflix", key_metadata_available=False),
            Network(),
            KeyboxAuthority(),
        )
        title = next(iter(backend.catalog))
        token = backend.accounts["alice"]
        response = _get(
            backend.api,
            f"https://api.geoflix.example/keymap?title={title.title_id}"
            f"&token={token}",
        )
        assert response.status == 451


class TestSubtitleListing:
    def test_unlisted_subtitles_absent_from_catalog(self):
        backend = OttBackend(
            _profile(service="nosubs", subtitles_listed=False),
            Network(),
            KeyboxAuthority(),
        )
        title = next(iter(backend.catalog))
        assert title.subtitles() == []


class TestSecureChannel:
    def test_playback_refused_without_session(self):
        backend = OttBackend(
            _profile(service="scflix", uri_protection=URI_SECURE_CHANNEL),
            Network(),
            KeyboxAuthority(),
        )
        title = next(iter(backend.catalog))
        token = backend.accounts["alice"]
        response = _get(
            backend.api,
            f"https://api.scflix.example/playback?title={title.title_id}"
            f"&token={token}",
        )
        assert response.status == 403
        assert b"secure channel" in response.body

    def test_secure_channel_key_registered(self):
        backend = OttBackend(
            _profile(service="scflix2", uri_protection=URI_SECURE_CHANNEL),
            Network(),
            KeyboxAuthority(),
        )
        assert backend.secure_channel_kid in backend.license_server.known_key_ids()

    def test_plain_profile_has_no_channel_key(self, backend):
        assert (
            backend.secure_channel_kid
            not in backend.license_server.known_key_ids()
        )


class TestEmbeddedLicense:
    @pytest.fixture
    def custom_backend(self):
        return OttBackend(
            _profile(service="embedflix", custom_drm_on_l3=True),
            Network(),
            KeyboxAuthority(),
        )

    def test_grants_sub_hd_keys(self, custom_backend):
        from repro.ott.custom_drm import EmbeddedCdm

        backend = custom_backend
        title = next(iter(backend.catalog))
        token = backend.accounts["alice"]
        cdm = EmbeddedCdm("embedflix")
        response = _post(
            backend.api,
            f"https://api.embedflix.example/embedded-license?token={token}",
            cdm.build_key_request(title.title_id),
        )
        assert response.ok
        loaded = cdm.load_keys(response.body)
        packaged = backend.packaged[title.title_id]
        assert packaged.kid_by_rep["v540"] in loaded
        assert packaged.kid_by_rep["v1080"] not in loaded

    def test_rejects_tampered_request(self, custom_backend):
        from repro.ott.custom_drm import EmbeddedCdm

        backend = custom_backend
        title = next(iter(backend.catalog))
        token = backend.accounts["alice"]
        request = json.loads(EmbeddedCdm("embedflix").build_key_request(title.title_id))
        request["mac"] = "00" * 32
        response = _post(
            backend.api,
            f"https://api.embedflix.example/embedded-license?token={token}",
            json.dumps(request).encode(),
        )
        assert response.status == 400

    def test_plain_backend_has_no_embedded_route(self, backend):
        response = _post(
            backend.api,
            "https://api.testflix.example/embedded-license?token=x",
            b"{}",
        )
        assert response.status == 404
