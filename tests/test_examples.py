"""Smoke tests: every example script must run to completion."""

import runpy
import sys
from pathlib import Path

import pytest

_EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples").glob("*.py"),
    key=lambda p: p.name,
)


@pytest.mark.parametrize("script", _EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"


def test_quickstart_reports_match(capsys, monkeypatch):
    script = next(p for p in _EXAMPLES if p.name == "quickstart.py")
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    assert "Cell-for-cell match" in capsys.readouterr().out


def test_break_legacy_device_reports_qhd(capsys, monkeypatch):
    script = next(p for p in _EXAMPLES if p.name == "break_legacy_device.py")
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert "best DRM-free quality: 540p" in out
    assert "clear" in out
