"""Integration: the §IV-D practical-impact results across all ten apps."""

import pytest

from repro.core.study import AttackStudyResult, WideLeakStudy
from repro.ott.registry import ALL_PROFILES

# The six apps §IV-D recovers DRM-free content from: "we demonstrate
# the practical impact of our results by obtaining DRM-free contents
# from all OTT apps still supporting old devices (except Amazon)".
SIX_BROKEN = {"Netflix", "Hulu", "myCanal", "Showtime", "OCS", "Salto"}


@pytest.fixture(scope="module")
def attack_results() -> dict[str, AttackStudyResult]:
    study = WideLeakStudy.with_default_apps()
    return study.run_all_attacks()


class TestPracticalImpact:
    def test_exactly_six_apps_broken(self, attack_results):
        broken = {
            name
            for name, result in attack_results.items()
            if result.recovered is not None and result.recovered.succeeded
        }
        assert broken == SIX_BROKEN

    def test_keybox_always_recovered_on_l3(self, attack_results):
        # CVE-2021-0639 is a device property, independent of the app.
        for name, result in attack_results.items():
            assert result.attack.keybox_recovered, name

    def test_revoking_apps_resist(self, attack_results):
        for name in ("Disney+", "HBO Max", "Starz"):
            result = attack_results[name]
            assert not result.attack.succeeded
            assert not result.attack.rsa_recovered
            assert result.recovered is None

    def test_amazon_resists_via_custom_drm(self, attack_results):
        amazon = attack_results["Amazon Prime Video"]
        assert not amazon.attack.succeeded
        assert amazon.attack.licenses_observed == 0

    def test_best_quality_is_qhd(self, attack_results):
        """'the best quality that we get is unsurprisingly 960x540'."""
        for name in SIX_BROKEN:
            recovered = attack_results[name].recovered
            assert recovered is not None
            assert recovered.best_video_height == 540, name

    def test_recovered_media_plays_without_account(self, attack_results):
        from repro.media.player import AssetStatus, probe_track

        for name in SIX_BROKEN:
            recovered = attack_results[name].recovered
            video = next(
                t for t in recovered.tracks if t.kind == "video" and t.playable
            )
            probe = probe_track(video.clear_init, video.clear_segments)
            assert probe.status is AssetStatus.CLEAR, name

    def test_recovered_keys_match_service_ground_truth(self, attack_results):
        study = WideLeakStudy.with_default_apps()
        for name in SIX_BROKEN:
            result = attack_results[name]
            backend_keys = {}
            # Fresh study instance has identical deterministic keys.
            profile = result.profile
            backend = study.backends[profile.service]
            for packaged in backend.packaged.values():
                backend_keys.update(packaged.content_keys)
            for kid, key in result.attack.content_keys.items():
                if kid in backend_keys:
                    assert backend_keys[kid] == key


class TestL1Resistance:
    def test_attack_fails_on_l1_device(self):
        from repro.core.keyladder_attack import KeyLadderAttack
        from repro.ott.app import OttApp
        from repro.ott.registry import profile_by_name

        study = WideLeakStudy.with_default_apps()
        profile = profile_by_name("Showtime")
        app = OttApp(profile, study.l1_device, study.backends[profile.service])
        result = KeyLadderAttack(study.l1_device).run(app)
        assert result.playback is not None and result.playback.ok
        assert result.licenses_observed >= 1  # licenses are observable...
        assert not result.keybox_recovered  # ...but the RoT is not
        assert not result.succeeded
