"""ISO-BMFF box model: round trips, typed boxes, error handling."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bmff.boxes import (
    Box,
    BoxParseError,
    FrmaBox,
    PsshBox,
    SaioBox,
    SaizBox,
    SchmBox,
    SencBox,
    SencEntry,
    SubsampleRange,
    TencBox,
    find_boxes,
    find_first,
    parse_boxes,
    serialize_boxes,
)


def _round_trip(boxes, **kwargs):
    return parse_boxes(serialize_boxes(boxes), **kwargs)


class TestGenericBox:
    def test_leaf_round_trip(self):
        box = Box(box_type=b"mdat", payload=b"hello world")
        (parsed,) = _round_trip([box])
        assert parsed.box_type == b"mdat"
        assert parsed.payload == b"hello world"

    def test_container_round_trip(self):
        tree = Box(
            box_type=b"moov",
            children=[Box(box_type=b"mdat", payload=b"x"), Box(box_type=b"free")],
        )
        (parsed,) = _round_trip([tree])
        assert [c.box_type for c in parsed.children] == [b"mdat", b"free"]

    def test_nested_containers(self):
        tree = Box(
            box_type=b"moov",
            children=[
                Box(
                    box_type=b"trak",
                    children=[Box(box_type=b"mdia", children=[])],
                )
            ],
        )
        (parsed,) = _round_trip([tree])
        assert parsed.find(b"trak", b"mdia")

    def test_multiple_top_level(self):
        boxes = [Box(box_type=b"ftyp", payload=b"a"), Box(box_type=b"mdat")]
        parsed = _round_trip(boxes)
        assert [b.box_type for b in parsed] == [b"ftyp", b"mdat"]

    def test_bad_type_length_rejected(self):
        with pytest.raises(ValueError, match="4 bytes"):
            Box(box_type=b"abc")

    def test_fourcc(self):
        assert Box(box_type=b"moov").fourcc == "moov"

    @given(payload=st.binary(max_size=100))
    def test_payload_round_trip_property(self, payload):
        (parsed,) = _round_trip([Box(box_type=b"blob", payload=payload)])
        assert parsed.payload == payload


class TestParseErrors:
    def test_truncated_header(self):
        with pytest.raises(BoxParseError, match="truncated"):
            parse_boxes(b"\x00\x00\x00")

    def test_size_too_small(self):
        with pytest.raises(BoxParseError, match="bad box size"):
            parse_boxes(b"\x00\x00\x00\x04mdat")

    def test_size_beyond_data(self):
        with pytest.raises(BoxParseError, match="bad box size"):
            parse_boxes(b"\x00\x00\x00\xffmdatshort")

    def test_truncated_fullbox(self):
        blob = b"\x00\x00\x00\x0apssh\x00\x00"
        with pytest.raises(BoxParseError):
            parse_boxes(blob)


class TestTenc:
    def test_round_trip(self):
        kid = bytes(range(16))
        tenc = TencBox(box_type=b"tenc", is_protected=True, iv_size=8, default_kid=kid)
        (parsed,) = _round_trip([tenc])
        assert isinstance(parsed, TencBox)
        assert parsed.default_kid == kid
        assert parsed.iv_size == 8
        assert parsed.is_protected

    def test_unprotected_round_trip(self):
        tenc = TencBox(
            box_type=b"tenc", is_protected=False, iv_size=0, default_kid=bytes(16)
        )
        (parsed,) = _round_trip([tenc])
        assert not parsed.is_protected

    def test_rejects_bad_kid(self):
        with pytest.raises(ValueError, match="16 bytes"):
            TencBox(box_type=b"tenc", default_kid=bytes(8))

    def test_rejects_bad_iv_size(self):
        with pytest.raises(ValueError, match="iv_size"):
            TencBox(box_type=b"tenc", iv_size=12, default_kid=bytes(16))


class TestSenc:
    def test_round_trip_with_subsamples(self):
        entries = [
            SencEntry(iv=bytes(8), subsamples=[SubsampleRange(10, 90)]),
            SencEntry(iv=bytes(range(8)), subsamples=[SubsampleRange(5, 20)]),
        ]
        senc = SencBox(box_type=b"senc", entries=entries, iv_size=8)
        (parsed,) = _round_trip([senc], iv_size_hint=8)
        assert isinstance(parsed, SencBox)
        assert len(parsed.entries) == 2
        assert parsed.entries[0].subsamples[0].protected_bytes == 90
        assert parsed.entries[1].iv == bytes(range(8))

    def test_round_trip_without_subsamples(self):
        senc = SencBox(
            box_type=b"senc", entries=[SencEntry(iv=bytes(8))], iv_size=8
        )
        (parsed,) = _round_trip([senc], iv_size_hint=8)
        assert parsed.entries[0].subsamples == []
        assert parsed.flags == 0

    def test_16_byte_iv(self):
        senc = SencBox(
            box_type=b"senc", entries=[SencEntry(iv=bytes(16))], iv_size=16
        )
        (parsed,) = _round_trip([senc], iv_size_hint=16)
        assert len(parsed.entries[0].iv) == 16

    def test_iv_length_mismatch_rejected_on_serialize(self):
        senc = SencBox(
            box_type=b"senc", entries=[SencEntry(iv=bytes(4))], iv_size=8
        )
        with pytest.raises(ValueError, match="IV length"):
            senc.serialize()


class TestPssh:
    def test_v1_round_trip(self):
        kids = [bytes([i]) * 16 for i in range(3)]
        pssh = PsshBox(
            box_type=b"pssh", system_id=bytes(16), key_ids=kids, data=b"init"
        )
        (parsed,) = _round_trip([pssh])
        assert isinstance(parsed, PsshBox)
        assert parsed.version == 1
        assert parsed.key_ids == kids
        assert parsed.data == b"init"

    def test_v0_round_trip(self):
        pssh = PsshBox(box_type=b"pssh", system_id=bytes(16), data=b"blob")
        (parsed,) = _round_trip([pssh])
        assert parsed.version == 0
        assert parsed.key_ids == []
        assert parsed.data == b"blob"

    def test_rejects_bad_system_id(self):
        with pytest.raises(ValueError, match="system_id"):
            PsshBox(box_type=b"pssh", system_id=bytes(8))

    def test_rejects_bad_key_id_on_serialize(self):
        pssh = PsshBox(box_type=b"pssh", system_id=bytes(16), key_ids=[bytes(4)])
        with pytest.raises(ValueError, match="key id"):
            pssh.serialize()


class TestAuxBoxes:
    def test_saiz_uniform(self):
        saiz = SaizBox(box_type=b"saiz", sample_sizes=[8, 8, 8])
        (parsed,) = _round_trip([saiz])
        assert parsed.sample_sizes == [8, 8, 8]

    def test_saiz_varied(self):
        saiz = SaizBox(box_type=b"saiz", sample_sizes=[8, 14, 20])
        (parsed,) = _round_trip([saiz])
        assert parsed.sample_sizes == [8, 14, 20]

    def test_saio(self):
        saio = SaioBox(box_type=b"saio", offsets=[0, 100, 9999])
        (parsed,) = _round_trip([saio])
        assert parsed.offsets == [0, 100, 9999]

    def test_frma(self):
        frma = FrmaBox(box_type=b"frma", original_format=b"avc1")
        (parsed,) = _round_trip([frma])
        assert parsed.original_format == b"avc1"

    def test_schm(self):
        schm = SchmBox(box_type=b"schm", scheme_type=b"cenc")
        (parsed,) = _round_trip([schm])
        assert parsed.scheme_type == b"cenc"
        assert parsed.scheme_version == 0x00010000


class TestFind:
    def _tree(self):
        return [
            Box(
                box_type=b"moov",
                children=[
                    Box(box_type=b"trak", children=[Box(box_type=b"mdia")]),
                    Box(box_type=b"trak", children=[Box(box_type=b"mdia")]),
                    PsshBox(box_type=b"pssh", system_id=bytes(16)),
                ],
            )
        ]

    def test_find_boxes_multiple(self):
        assert len(find_boxes(self._tree(), b"moov", b"trak")) == 2

    def test_find_deep_path(self):
        assert len(find_boxes(self._tree(), b"moov", b"trak", b"mdia")) == 2

    def test_find_first(self):
        assert find_first(self._tree(), b"moov", b"pssh") is not None

    def test_find_first_missing(self):
        assert find_first(self._tree(), b"moov", b"mvex") is None
