"""Widevine CMAC KDF: lengths, separation, session key set."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.kdf import (
    LABEL_AUTHENTICATION,
    LABEL_ENCRYPTION,
    derive_key,
    derive_session_keys,
)

_BASE = bytes(range(16))


@pytest.mark.parametrize("bits", [128, 256, 384, 512])
def test_output_length(bits):
    assert len(derive_key(_BASE, b"L", b"ctx", bits)) == bits // 8


def test_rejects_non_byte_multiple():
    with pytest.raises(ValueError, match="multiple of 8"):
        derive_key(_BASE, b"L", b"ctx", 100)


def test_label_separation():
    a = derive_key(_BASE, LABEL_ENCRYPTION, b"ctx", 128)
    b = derive_key(_BASE, LABEL_AUTHENTICATION, b"ctx", 128)
    assert a != b


def test_context_separation():
    assert derive_key(_BASE, b"L", b"ctx-1", 128) != derive_key(
        _BASE, b"L", b"ctx-2", 128
    )


def test_base_key_separation():
    other = bytes([1]) + _BASE[1:]
    assert derive_key(_BASE, b"L", b"ctx", 128) != derive_key(other, b"L", b"ctx", 128)


def test_deterministic():
    assert derive_key(_BASE, b"L", b"ctx", 256) == derive_key(_BASE, b"L", b"ctx", 256)


def test_multi_block_prefix_consistency():
    # Counter-mode KDF: first block of a 256-bit output is NOT required
    # to equal the 128-bit output (length is in the context), assert the
    # actual behaviour so regressions surface.
    short = derive_key(_BASE, b"L", b"ctx", 128)
    long = derive_key(_BASE, b"L", b"ctx", 256)
    assert short != long[:16]  # length field differs


@given(context=st.binary(max_size=64))
def test_session_keys_all_distinct(context):
    keys = derive_session_keys(_BASE, context)
    material = {
        keys.encryption,
        keys.mac_server,
        keys.mac_client,
        keys.generic_encryption,
        keys.generic_signing,
    }
    assert len(material) == 5


def test_session_key_sizes():
    keys = derive_session_keys(_BASE, b"ctx")
    assert len(keys.encryption) == 16
    assert len(keys.mac_server) == 32
    assert len(keys.mac_client) == 32
    assert len(keys.generic_encryption) == 16
    assert len(keys.generic_signing) == 32


def test_session_keys_context_bound():
    a = derive_session_keys(_BASE, b"request-1")
    b = derive_session_keys(_BASE, b"request-2")
    assert a.encryption != b.encryption
    assert a.mac_server != b.mac_server


def test_session_keys_repr_redacts():
    keys = derive_session_keys(_BASE, b"ctx")
    assert keys.encryption.hex() not in repr(keys)
    assert "redacted" in repr(keys)
