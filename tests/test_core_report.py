"""Table I report model: rendering, lookup, diffing."""

import pytest

from repro.core.report import (
    DAGGER,
    EXPECTED_PAPER_TABLE,
    FULL,
    HALF,
    TableOne,
    TableOneRow,
    expected_row,
)


def _row(**overrides) -> TableOneRow:
    defaults = dict(
        app="TestApp",
        widevine_used=FULL,
        video="Encrypted",
        audio="Encrypted",
        subtitles="Clear",
        key_usage="Minimum",
        legacy_playback=FULL,
    )
    defaults.update(overrides)
    return TableOneRow(**defaults)


class TestTableOne:
    def test_add_and_lookup(self):
        table = TableOne()
        table.add(_row())
        assert table.row_for("TestApp").video == "Encrypted"
        with pytest.raises(KeyError):
            table.row_for("Missing")

    def test_render_aligned(self):
        table = TableOne(rows=[_row(), _row(app="A Much Longer App Name")])
        rendered = table.render()
        lines = rendered.splitlines()
        assert len({len(line.rstrip()) for line in lines if line}) <= 3
        assert "OTT" in lines[0]
        assert "TestApp" in rendered

    def test_cells_tuple(self):
        cells = _row().cells()
        assert cells[0] == "TestApp"
        assert len(cells) == 7


class TestPaperComparison:
    def test_expected_table_has_all_ten(self):
        assert len(EXPECTED_PAPER_TABLE) == 10
        assert expected_row("Netflix").audio == "Clear"
        assert expected_row("Amazon Prime Video").widevine_used == FULL + DAGGER
        assert expected_row("Starz").legacy_playback == HALF

    def test_expected_row_unknown(self):
        with pytest.raises(KeyError):
            expected_row("Quibi")

    def test_diff_reports_missing_rows(self):
        table = TableOne()
        diffs = table.diff_against_paper()
        assert len(diffs) == 10
        assert all("row missing" in d for d in diffs)

    def test_diff_reports_cell_mismatch(self):
        table = TableOne(rows=list(EXPECTED_PAPER_TABLE.values()))
        assert table.matches_paper
        # Flip one cell.
        netflix = table.row_for("Netflix")
        table.rows[table.rows.index(netflix)] = _row(
            app="Netflix",
            widevine_used=netflix.widevine_used,
            video=netflix.video,
            audio="Encrypted",  # wrong on purpose
            subtitles=netflix.subtitles,
            key_usage=netflix.key_usage,
            legacy_playback=netflix.legacy_playback,
        )
        diffs = table.diff_against_paper()
        assert len(diffs) == 1
        assert "Netflix / Audio (Q2)" in diffs[0]
        assert "paper='Clear'" in diffs[0]
        assert not table.matches_paper
