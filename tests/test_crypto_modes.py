"""Block-cipher modes: NIST SP 800-38A vectors, padding, properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.modes import (
    cbc_decrypt,
    cbc_encrypt,
    ctr_transform,
    ecb_decrypt,
    ecb_encrypt,
    pkcs7_pad,
    pkcs7_unpad,
    xor_bytes,
)

_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")


class TestPkcs7:
    def test_pad_length_multiple(self):
        assert pkcs7_pad(b"abc") == b"abc" + bytes([13]) * 13

    def test_pad_full_block_when_aligned(self):
        padded = pkcs7_pad(bytes(16))
        assert len(padded) == 32
        assert padded[-1] == 16

    def test_unpad_round_trip_empty(self):
        assert pkcs7_unpad(pkcs7_pad(b"")) == b""

    @given(data=st.binary(max_size=200))
    def test_round_trip(self, data):
        assert pkcs7_unpad(pkcs7_pad(data)) == data

    def test_unpad_rejects_unaligned(self):
        with pytest.raises(ValueError, match="multiple"):
            pkcs7_unpad(b"abc")

    def test_unpad_rejects_zero_pad_byte(self):
        with pytest.raises(ValueError, match="invalid padding length"):
            pkcs7_unpad(bytes(15) + b"\x00")

    def test_unpad_rejects_oversized_pad_byte(self):
        with pytest.raises(ValueError, match="invalid padding length"):
            pkcs7_unpad(bytes(15) + b"\x11")

    def test_unpad_rejects_inconsistent_padding(self):
        blob = bytes(13) + bytes([2, 3, 3])
        with pytest.raises(ValueError, match="invalid padding bytes"):
            pkcs7_unpad(blob)

    def test_pad_rejects_bad_block_size(self):
        with pytest.raises(ValueError):
            pkcs7_pad(b"x", block_size=0)
        with pytest.raises(ValueError):
            pkcs7_pad(b"x", block_size=256)


class TestEcb:
    def test_sp800_38a_vector(self):
        pt = bytes.fromhex(
            "6bc1bee22e409f96e93d7e117393172a"
            "ae2d8a571e03ac9c9eb76fac45af8e51"
        )
        expected = (
            "3ad77bb40d7a3660a89ecaf32466ef97"
            "f5d3d58503b9699de785895a96fdbaaf"
        )
        assert ecb_encrypt(_KEY, pt).hex() == expected

    def test_round_trip(self):
        pt = bytes(range(48))
        assert ecb_decrypt(_KEY, ecb_encrypt(_KEY, pt)) == pt

    def test_rejects_unaligned(self):
        with pytest.raises(ValueError, match="block aligned"):
            ecb_encrypt(_KEY, b"short")
        with pytest.raises(ValueError, match="block aligned"):
            ecb_decrypt(_KEY, b"short")


class TestCbc:
    def test_sp800_38a_vector(self):
        # SP 800-38A F.2.1 (no padding).
        iv = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        pt = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        ct = cbc_encrypt(_KEY, iv, pt, pad=False)
        assert ct.hex() == "7649abac8119b246cee98e9b12e9197d"

    @given(data=st.binary(max_size=300), iv=st.binary(min_size=16, max_size=16))
    def test_round_trip_padded(self, data, iv):
        assert cbc_decrypt(_KEY, iv, cbc_encrypt(_KEY, iv, data)) == data

    def test_rejects_short_iv(self):
        with pytest.raises(ValueError, match="IV must be 16"):
            cbc_encrypt(_KEY, bytes(8), b"data")
        with pytest.raises(ValueError, match="IV must be 16"):
            cbc_decrypt(_KEY, bytes(8), bytes(16))

    def test_rejects_unaligned_ciphertext(self):
        with pytest.raises(ValueError, match="block aligned"):
            cbc_decrypt(_KEY, bytes(16), bytes(17))

    def test_tampered_ciphertext_fails_padding(self):
        iv = bytes(16)
        ct = bytearray(cbc_encrypt(_KEY, iv, b"secret payload"))
        ct[-1] ^= 0xFF
        with pytest.raises(ValueError):
            cbc_decrypt(_KEY, iv, bytes(ct))

    def test_unpadded_requires_alignment(self):
        with pytest.raises(ValueError, match="block aligned"):
            cbc_encrypt(_KEY, bytes(16), b"short", pad=False)


class TestCtr:
    def test_sp800_38a_vector(self):
        iv = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
        pt = bytes.fromhex(
            "6bc1bee22e409f96e93d7e117393172a"
            "ae2d8a571e03ac9c9eb76fac45af8e51"
        )
        expected = (
            "874d6191b620e3261bef6864990db6ce"
            "9806f66b7970fdff8617187bb9fffdff"
        )
        assert ctr_transform(_KEY, iv, pt).hex() == expected

    @given(data=st.binary(max_size=200))
    def test_involution_16_byte_iv(self, data):
        iv = bytes(range(16))
        assert ctr_transform(_KEY, iv, ctr_transform(_KEY, iv, data)) == data

    @given(data=st.binary(max_size=200))
    def test_involution_8_byte_iv(self, data):
        iv = bytes(range(8))
        assert ctr_transform(_KEY, iv, ctr_transform(_KEY, iv, data)) == data

    def test_initial_block_offsets_keystream(self):
        iv = bytes(16)
        data = bytes(64)
        whole = ctr_transform(_KEY, iv, data)
        tail = ctr_transform(_KEY, iv, data[32:], initial_block=2)
        assert whole[32:] == tail

    def test_counter_wraps_at_128_bits(self):
        iv = bytes([0xFF]) * 16
        # Must not raise; counter addition wraps modulo 2^128.
        out = ctr_transform(_KEY, iv, bytes(32))
        assert len(out) == 32

    def test_rejects_bad_iv_length(self):
        with pytest.raises(ValueError, match="8 or 16"):
            ctr_transform(_KEY, bytes(12), b"data")

    def test_non_block_aligned_input(self):
        iv = bytes(16)
        data = b"exactly 21 bytes long"
        assert len(ctr_transform(_KEY, iv, data)) == len(data)


class TestXor:
    def test_xor(self):
        assert xor_bytes(b"\x0f\xf0", b"\xff\xff") == b"\xf0\x0f"

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="length mismatch"):
            xor_bytes(b"a", b"ab")

    @given(a=st.binary(min_size=5, max_size=5), b=st.binary(min_size=5, max_size=5))
    def test_self_inverse(self, a, b):
        assert xor_bytes(xor_bytes(a, b), b) == a
