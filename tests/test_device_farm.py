"""Device-matrix behaviour: the discontinued-L1 case (Galaxy S7) and
cross-device comparisons on the same service."""

import pytest

from repro.android.device import galaxy_s7, nexus_5, pixel_6
from repro.core.keyladder_attack import KeyLadderAttack
from repro.core.legacy_probe import LegacyDeviceProbe, LegacyOutcome
from repro.license_server.policy import AudioProtection
from repro.license_server.provisioning import KeyboxAuthority
from repro.net.network import Network
from repro.ott.app import OttApp
from repro.ott.backend import OttBackend
from repro.ott.profile import OttProfile


def _world(**overrides):
    defaults = dict(
        name="FarmFlix",
        service="farmflix",
        package="com.farmflix.app",
        installs_millions=1,
        audio_protection=AudioProtection.SHARED_KEY,
        enforces_revocation=False,
    )
    defaults.update(overrides)
    profile = OttProfile(**defaults)
    network = Network()
    authority = KeyboxAuthority()
    backend = OttBackend(profile, network, authority)
    return profile, network, authority, backend


class TestGalaxyS7:
    def test_profile(self):
        network, authority = Network(), KeyboxAuthority()
        device = galaxy_s7(network, authority)
        assert device.spec.discontinued
        assert device.widevine_security_level == "L1"
        assert device.drm_process.name == "mediadrmserver"

    def test_plays_hd_on_lenient_service(self):
        profile, network, authority, backend = _world(service="s7l")
        device = galaxy_s7(network, authority)
        device.rooted = True
        result = OttApp(profile, device, backend).play()
        assert result.ok
        # Discontinued, but L1: full HD still plays.
        assert result.video_height == 1080

    def test_revoking_service_refuses_old_l1_cdm(self):
        profile, network, authority, backend = _world(
            service="s7r", enforces_revocation=True
        )
        device = galaxy_s7(network, authority)
        device.rooted = True
        result = OttApp(profile, device, backend).play()
        assert not result.ok
        assert result.provisioning_failed

    def test_legacy_probe_accepts_it(self):
        profile, network, authority, backend = _world(service="s7p")
        device = galaxy_s7(network, authority)
        device.rooted = True
        probe = LegacyDeviceProbe(device).probe(OttApp(profile, device, backend))
        assert probe.outcome is LegacyOutcome.PLAYS
        assert probe.observation.security_level == "L1"

    def test_memory_scan_still_fails_despite_discontinuation(self):
        """Discontinued ≠ broken: the S7's TEE keeps the keybox out of
        reach — the paper's attack needs the *L3* storage model."""
        profile, network, authority, backend = _world(service="s7a")
        device = galaxy_s7(network, authority)
        device.rooted = True
        app = OttApp(profile, device, backend)
        result = KeyLadderAttack(device).run(app)
        assert result.playback.ok
        assert not result.keybox_recovered
        assert not result.succeeded


class TestCrossDevice:
    def test_same_service_both_levels(self):
        """The paper runs its experiments 'for L1 and L3 to assess that
        it does not depend on security level' — same service, same
        title, both devices."""
        profile, network, authority, backend = _world(service="xdev")
        l1 = pixel_6(network, authority)
        l3 = nexus_5(network, authority)
        for device in (l1, l3):
            device.rooted = True
        result_l1 = OttApp(profile, l1, backend).play()
        result_l3 = OttApp(profile, l3, backend).play()
        assert result_l1.ok and result_l3.ok
        assert result_l1.video_height == 1080
        assert result_l3.video_height == 540
        # Same audio track, identical protection observed on both.
        audio_l1 = next(t for t in result_l1.tracks if t.kind == "audio")
        audio_l3 = next(t for t in result_l3.tracks if t.kind == "audio")
        assert audio_l1.encrypted == audio_l3.encrypted

    def test_distinct_devices_distinct_keyboxes(self):
        network, authority = Network(), KeyboxAuthority()
        a = nexus_5(network, authority, serial="N5-A")
        b = nexus_5(network, authority, serial="N5-B")
        assert a.keybox.device_key != b.keybox.device_key
        assert authority.knows(a.keybox.device_id)
        assert authority.knows(b.keybox.device_id)
