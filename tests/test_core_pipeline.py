"""Core methodology units: static analysis, monitor, audit, key usage,
legacy probe — each against a purpose-built single-service world."""

import pytest

from repro.android.device import nexus_5, pixel_6
from repro.core.content_audit import ContentAuditor
from repro.core.key_usage import KeyUsageAnalyzer
from repro.core.legacy_probe import LegacyDeviceProbe, LegacyOutcome
from repro.core.monitor import DrmApiMonitor
from repro.core.static_analysis import analyze_apk
from repro.license_server.policy import AudioProtection, KeyUsagePolicy
from repro.license_server.provisioning import KeyboxAuthority
from repro.media.player import AssetStatus
from repro.net.network import Network
from repro.ott.app import OttApp
from repro.ott.backend import OttBackend
from repro.ott.profile import URI_SECURE_CHANNEL, OttProfile


def _world(**overrides):
    defaults = dict(
        name="CoreFlix",
        service="coreflix",
        package="com.coreflix.app",
        installs_millions=1,
        audio_protection=AudioProtection.SHARED_KEY,
        enforces_revocation=False,
    )
    defaults.update(overrides)
    profile = OttProfile(**defaults)
    network = Network()
    authority = KeyboxAuthority()
    backend = OttBackend(profile, network, authority)
    return profile, network, authority, backend


def _l1(network, authority):
    device = pixel_6(network, authority)
    device.rooted = True
    return device


def _l3(network, authority):
    device = nexus_5(network, authority)
    device.rooted = True
    return device


class TestStaticAnalysis:
    def test_detects_drm_api_use(self):
        profile, *_ = _world()
        report = analyze_apk(profile.build_apk())
        assert report.uses_android_drm_api
        assert report.uses_media_drm
        assert report.uses_media_crypto
        assert report.uses_exoplayer
        assert report.drm_call_sites

    def test_detects_custom_player(self):
        profile, *_ = _world(service="inh", uses_exoplayer=False)
        report = analyze_apk(profile.build_apk())
        assert report.uses_android_drm_api
        assert not report.uses_exoplayer

    def test_clean_apk(self):
        from repro.android.packages import Apk

        apk = Apk(package="com.game", version="1")
        apk.add_class("com.game.Main", ("android.app.Activity.onCreate",))
        report = analyze_apk(apk)
        assert not report.uses_android_drm_api


class TestDrmApiMonitor:
    def test_observation_during_playback_l1(self):
        profile, network, authority, backend = _world(service="monl1")
        device = _l1(network, authority)
        app = OttApp(profile, device, backend)
        monitor = DrmApiMonitor(device)
        with monitor.attached():
            assert app.play().ok
            observation = monitor.observation()
        assert observation.widevine_used
        assert observation.security_level == "L1"
        assert observation.oecc_call_count > 10
        assert "_oecc12_decrypt_ctr" in observation.functions_seen

    def test_observation_l3(self):
        profile, network, authority, backend = _world(service="monl3")
        device = _l3(network, authority)
        app = OttApp(profile, device, backend)
        monitor = DrmApiMonitor(device)
        with monitor.attached():
            assert app.play().ok
            observation = monitor.observation()
        assert observation.security_level == "L3"

    def test_custom_drm_invisible(self):
        profile, network, authority, backend = _world(
            service="moncust", custom_drm_on_l3=True
        )
        device = _l3(network, authority)
        app = OttApp(profile, device, backend)
        monitor = DrmApiMonitor(device)
        with monitor.attached():
            assert app.play().ok
            observation = monitor.observation()
        assert not observation.widevine_used
        assert observation.security_level is None

    def test_observation_requires_attach(self):
        profile, network, authority, backend = _world(service="monx")
        monitor = DrmApiMonitor(_l1(network, authority))
        with pytest.raises(RuntimeError, match="not attached"):
            monitor.observation()


class TestContentAudit:
    def test_encrypted_service(self):
        profile, network, authority, backend = _world(service="audenc")
        device = _l1(network, authority)
        app = OttApp(profile, device, backend)
        result = ContentAuditor(device, network).audit(app)
        assert result.playback.ok
        assert result.status_for("video") is AssetStatus.ENCRYPTED
        assert result.status_for("audio") is AssetStatus.ENCRYPTED
        assert result.status_for("text") is AssetStatus.CLEAR
        assert result.mpd_bytes is not None
        # All three video ladder rungs audited plus audio + subs.
        assert len(result.tracks) == 3 + 2 + 2

    def test_clear_audio_service(self):
        profile, network, authority, backend = _world(
            service="audclr", audio_protection=AudioProtection.CLEAR
        )
        device = _l1(network, authority)
        app = OttApp(profile, device, backend)
        result = ContentAuditor(device, network).audit(app)
        assert result.status_for("audio") is AssetStatus.CLEAR
        assert result.status_for("video") is AssetStatus.ENCRYPTED

    def test_unlisted_subtitles_reported_unknown(self):
        profile, network, authority, backend = _world(
            service="audnos", subtitles_listed=False
        )
        device = _l1(network, authority)
        app = OttApp(profile, device, backend)
        result = ContentAuditor(device, network).audit(app)
        assert result.status_for("text") is None

    def test_secure_channel_manifest_recovered_from_cdm_dump(self):
        profile, network, authority, backend = _world(
            service="audsc", uri_protection=URI_SECURE_CHANNEL
        )
        device = _l1(network, authority)
        app = OttApp(profile, device, backend)
        result = ContentAuditor(device, network).audit(app)
        assert result.playback.ok
        assert result.secure_channel_manifest_recovered
        assert result.mpd_url is not None

    def test_audit_works_on_l3_too(self):
        # §IV-B: "we perform our experiments for L1 and L3 to assess
        # that it does not depend on security level".
        profile, network, authority, backend = _world(service="audl3")
        device = _l3(network, authority)
        app = OttApp(profile, device, backend)
        result = ContentAuditor(device, network).audit(app)
        assert result.playback.ok
        assert result.status_for("video") is AssetStatus.ENCRYPTED
        assert result.observation.security_level == "L3"


class TestKeyUsage:
    def _audit(self, **overrides):
        profile, network, authority, backend = _world(**overrides)
        device = _l1(network, authority)
        app = OttApp(profile, device, backend)
        audit = ContentAuditor(device, network).audit(app)
        return app, audit

    def test_shared_key_is_minimum(self):
        app, audit = self._audit(service="kumin")
        report = KeyUsageAnalyzer().analyze(app, audit.mpd_bytes)
        assert report.classification is KeyUsagePolicy.MINIMUM
        assert report.audio_shares_video_key
        assert not report.audio_clear
        assert report.video_keys_distinct_per_resolution

    def test_clear_audio_is_minimum(self):
        app, audit = self._audit(
            service="kuclr", audio_protection=AudioProtection.CLEAR
        )
        report = KeyUsageAnalyzer().analyze(app, audit.mpd_bytes)
        assert report.classification is KeyUsagePolicy.MINIMUM
        assert report.audio_clear

    def test_distinct_keys_is_recommended(self):
        app, audit = self._audit(
            service="kurec", audio_protection=AudioProtection.DISTINCT_KEY
        )
        report = KeyUsageAnalyzer().analyze(app, audit.mpd_bytes)
        assert report.classification is KeyUsagePolicy.RECOMMENDED

    def test_geoblocked_metadata_is_unknown(self):
        app, audit = self._audit(service="kugeo", key_metadata_available=False)
        report = KeyUsageAnalyzer().analyze(app, audit.mpd_bytes)
        assert report.classification is None
        assert any("regional restriction" in n for n in report.notes)

    def test_no_manifest_is_unknown(self):
        app, __ = self._audit(service="kunone")
        report = KeyUsageAnalyzer().analyze(app, None)
        assert report.classification is None


class TestLegacyProbe:
    def test_plays(self):
        profile, network, authority, backend = _world(service="lgok")
        device = _l3(network, authority)
        probe = LegacyDeviceProbe(device).probe(OttApp(profile, device, backend))
        assert probe.outcome is LegacyOutcome.PLAYS
        assert probe.content_delivered
        assert probe.video_height == 540
        assert probe.observation.widevine_used

    def test_provisioning_failed(self):
        profile, network, authority, backend = _world(
            service="lgrev", enforces_revocation=True
        )
        device = _l3(network, authority)
        probe = LegacyDeviceProbe(device).probe(OttApp(profile, device, backend))
        assert probe.outcome is LegacyOutcome.PROVISIONING_FAILED
        assert not probe.content_delivered
        # Widevine was exercised (the provisioning request) even though
        # content never arrived — the paper's case (2).
        assert probe.observation.widevine_used

    def test_custom_drm(self):
        profile, network, authority, backend = _world(
            service="lgcust", custom_drm_on_l3=True
        )
        device = _l3(network, authority)
        probe = LegacyDeviceProbe(device).probe(OttApp(profile, device, backend))
        assert probe.outcome is LegacyOutcome.PLAYS_CUSTOM_DRM
        assert not probe.observation.widevine_used

    def test_rejects_supported_device(self):
        profile, network, authority, backend = _world(service="lgnew")
        device = _l1(network, authority)
        with pytest.raises(ValueError, match="discontinued"):
            LegacyDeviceProbe(device)
