"""Cross-layer property tests: arbitrary content and policies through
the whole package → audit → classify pipeline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bmff.builder import read_samples, read_track_info
from repro.bmff.cenc import decrypt_sample
from repro.dash.mpd import Mpd
from repro.dash.packager import Packager
from repro.license_server.policy import (
    AudioProtection,
    KeyUsagePolicy,
    RevocationPolicy,
    ServicePolicy,
    assign_track_crypto,
)
from repro.media.content import Resolution, make_title
from repro.media.player import AssetStatus, probe_track
from repro.net.cdn import CdnServer
from repro.net.http import HttpRequest


def _fetch(cdn: CdnServer, url: str) -> bytes:
    from repro.net.http import parse_url

    response = cdn.handle(
        HttpRequest("GET", f"https://{cdn.hostname}{parse_url(url).path}")
    )
    assert response.ok
    return response.body


_policy_strategy = st.sampled_from(list(AudioProtection))
_resolutions_strategy = st.lists(
    st.sampled_from(
        [Resolution(640, 360), Resolution(960, 540), Resolution(1280, 720),
         Resolution(1920, 1080)]
    ),
    min_size=1,
    max_size=3,
    unique=True,
)
_languages_strategy = st.lists(
    st.sampled_from(["en", "fr", "de", "ja"]), min_size=1, max_size=3, unique=True
)


@settings(max_examples=12, deadline=None)
@given(
    audio=_policy_strategy,
    resolutions=_resolutions_strategy,
    languages=_languages_strategy,
    duration=st.integers(min_value=4, max_value=20),
)
def test_package_then_probe_classifies_correctly(
    audio, resolutions, languages, duration
):
    """For any ladder shape and audio policy: packaged video probes
    ENCRYPTED; audio probes per policy; decryption with the assigned
    key restores the exact source samples."""
    policy = ServicePolicy(
        service="prop", audio_protection=audio, revocation=RevocationPolicy()
    )
    title = make_title(
        "prp00",
        "Property title",
        duration_s=duration,
        segment_duration_s=4,
        video_resolutions=tuple(sorted(resolutions)),
        audio_languages=tuple(languages),
        subtitle_languages=(),
    )
    assignment = assign_track_crypto(policy, title)
    cdn = CdnServer("cdn.prop.example")
    packaged = Packager("prop", cdn).package(title, assignment)

    for rep in title.representations:
        init_url, seg_urls = packaged.asset_urls[rep.rep_id]
        init = _fetch(cdn, init_url)
        segments = [_fetch(cdn, u) for u in seg_urls]
        probe = probe_track(init, segments)
        crypto = assignment[rep.rep_id]
        if crypto.protected:
            assert probe.status is AssetStatus.ENCRYPTED
            assert probe.default_kid == crypto.key_id
            # Decrypting with the assigned key restores the source.
            info = read_track_info(init)
            samples, __ = read_samples(segments[0], iv_size=info.iv_size)
            clear = [decrypt_sample(s, crypto.key) for s in samples]
            assert clear == title.samples_for_segment(rep, 0)
        else:
            assert probe.status is AssetStatus.CLEAR

    # MPD agrees with the ground truth about per-rep protection.
    mpd = Mpd.from_xml(packaged.mpd_xml)
    for aset in mpd.adaptation_sets:
        for mpd_rep in aset.representations:
            expected = assignment[mpd_rep.rep_id].protected
            assert mpd_rep.protected == expected


@settings(max_examples=12, deadline=None)
@given(audio=_policy_strategy)
def test_policy_classification_is_consistent(audio):
    """The key-usage class computed from the assignment always matches
    the policy's declared class."""
    policy = ServicePolicy(
        service="propc", audio_protection=audio, revocation=RevocationPolicy()
    )
    title = make_title("prc00", "Classification")
    assignment = assign_track_crypto(policy, title)
    video_kids = {
        assignment[r.rep_id].key_id for r in title.videos()
    }
    audio_assignments = [assignment[r.rep_id] for r in title.audios()]

    if audio is AudioProtection.CLEAR:
        assert all(not a.protected for a in audio_assignments)
        assert policy.key_usage is KeyUsagePolicy.MINIMUM
    elif audio is AudioProtection.SHARED_KEY:
        assert all(a.key_id in video_kids for a in audio_assignments)
        assert policy.key_usage is KeyUsagePolicy.MINIMUM
    else:
        assert all(
            a.protected and a.key_id not in video_kids for a in audio_assignments
        )
        assert policy.key_usage is KeyUsagePolicy.RECOMMENDED


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    sizes=st.lists(st.integers(min_value=1, max_value=400), min_size=1, max_size=5),
)
def test_segment_round_trip_arbitrary_sample_sizes(seed, sizes):
    """Any sample-size profile survives the build/read cycle."""
    from repro.bmff.builder import build_media_segment
    from repro.crypto.rng import HmacDrbg

    rng = HmacDrbg(seed.to_bytes(4, "big"))
    samples = [rng.generate(size) for size in sizes]
    parsed, protected = read_samples(build_media_segment(1, samples))
    assert not protected
    assert [s.data for s in parsed] == samples
