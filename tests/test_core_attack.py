"""The §IV-D key-ladder attack and media recovery, unit-level."""

import pytest

from repro.android.device import nexus_5, pixel_6
from repro.core.keyladder_attack import KeyLadderAttack
from repro.core.media_recovery import MediaRecoveryPipeline
from repro.license_server.policy import AudioProtection
from repro.license_server.provisioning import KeyboxAuthority
from repro.net.network import Network
from repro.ott.app import OttApp
from repro.ott.backend import OttBackend
from repro.ott.profile import OttProfile


def _world(**overrides):
    defaults = dict(
        name="AtkFlix",
        service="atkflix",
        package="com.atkflix.app",
        installs_millions=1,
        audio_protection=AudioProtection.SHARED_KEY,
        enforces_revocation=False,
    )
    defaults.update(overrides)
    profile = OttProfile(**defaults)
    network = Network()
    authority = KeyboxAuthority()
    backend = OttBackend(profile, network, authority)
    return profile, network, authority, backend


def _legacy(network, authority):
    device = nexus_5(network, authority)
    device.rooted = True
    return device


class TestKeyboxRecovery:
    def test_recovers_true_keybox_on_l3(self):
        __, network, authority, __ = _world(service="kbx1")
        device = _legacy(network, authority)
        recovered = KeyLadderAttack(device).recover_keybox()
        assert recovered is not None
        # Ground truth comparison: the attack recovered the real device key.
        assert recovered.device_key == device.keybox.device_key
        assert recovered.device_id == device.keybox.device_id

    def test_fails_on_l1(self):
        __, network, authority, __ = _world(service="kbx2")
        device = pixel_6(network, authority)
        device.rooted = True
        assert KeyLadderAttack(device).recover_keybox() is None

    def test_requires_root(self):
        __, network, authority, __ = _world(service="kbx3")
        device = nexus_5(network, authority)  # not rooted
        with pytest.raises(PermissionError, match="root"):
            KeyLadderAttack(device)


class TestRsaRecovery:
    def test_recovers_provisioned_key(self):
        profile, network, authority, backend = _world(service="rsa1")
        device = _legacy(network, authority)
        app = OttApp(profile, device, backend)
        assert app.play().ok  # provisions as a side effect
        attack = KeyLadderAttack(device)
        keybox = attack.recover_keybox()
        rsa = attack.recover_device_rsa_key(keybox, profile.package)
        assert rsa is not None
        from repro.license_server.provisioning import device_rsa_key

        assert rsa.n == device_rsa_key(device.keybox.device_id).n

    def test_no_blob_returns_none(self):
        profile, network, authority, __ = _world(service="rsa2")
        device = _legacy(network, authority)
        attack = KeyLadderAttack(device)
        keybox = attack.recover_keybox()
        assert attack.recover_device_rsa_key(keybox, profile.package) is None


class TestFullAttack:
    def test_recovers_content_keys_matching_ground_truth(self):
        profile, network, authority, backend = _world(service="full1")
        device = _legacy(network, authority)
        app = OttApp(profile, device, backend)
        result = KeyLadderAttack(device).run(app)
        assert result.succeeded
        assert result.keybox_recovered and result.rsa_recovered
        assert result.licenses_observed == 1
        packaged = backend.packaged[next(iter(backend.catalog)).title_id]
        for kid, key in result.content_keys.items():
            assert packaged.content_keys[kid] == key
        # Only the L3-grantable keys were observed (no HD keys).
        assert packaged.kid_by_rep["v1080"] not in result.content_keys

    def test_attack_fails_against_revoking_service(self):
        profile, network, authority, backend = _world(
            service="full2", enforces_revocation=True
        )
        device = _legacy(network, authority)
        app = OttApp(profile, device, backend)
        result = KeyLadderAttack(device).run(app)
        assert not result.succeeded
        assert result.keybox_recovered  # the device is still broken...
        assert not result.rsa_recovered  # ...but this service gave it nothing

    def test_attack_fails_against_custom_drm(self):
        profile, network, authority, backend = _world(
            service="full3", custom_drm_on_l3=True
        )
        device = _legacy(network, authority)
        app = OttApp(profile, device, backend)
        result = KeyLadderAttack(device).run(app)
        assert not result.succeeded
        assert result.licenses_observed == 0
        assert any("custom DRM" in n for n in result.notes)

    def test_keys_same_for_all_subscribers(self):
        """§IV-D: 'OTT apps use the same keys for all their subscribers
        for a given media' — verified by attacking two accounts."""
        profile, network, authority, backend = _world(service="full4")
        device = _legacy(network, authority)

        app_alice = OttApp(profile, device, backend)
        app_alice.login("alice")
        keys_alice = KeyLadderAttack(device).run(app_alice).content_keys

        app_bob = OttApp(profile, device, backend)
        app_bob.login("bob")
        keys_bob = KeyLadderAttack(device).run(app_bob).content_keys

        assert keys_alice and keys_alice == keys_bob


class TestMediaRecovery:
    def _recover(self, **overrides):
        profile, network, authority, backend = _world(**overrides)
        device = _legacy(network, authority)
        app = OttApp(profile, device, backend)
        attack = KeyLadderAttack(device).run(app)
        title_id = next(iter(backend.catalog)).title_id
        packaged = backend.packaged[title_id]
        mpd_url = f"https://{profile.cdn_host}{packaged.mpd_path}"
        recovered = MediaRecoveryPipeline(network).recover(
            profile.service, mpd_url, attack.content_keys
        )
        return backend, recovered

    def test_qhd_ceiling(self):
        __, recovered = self._recover(service="rec1")
        assert recovered.succeeded
        assert recovered.best_video_height == 540

    def test_hd_tracks_not_decryptable(self):
        __, recovered = self._recover(service="rec2")
        hd = [t for t in recovered.tracks if t.height in (720, 1080)]
        assert hd
        assert all(not t.decrypted and not t.playable for t in hd)
        assert all("no content key" in t.note for t in hd)

    def test_recovered_tracks_playable_without_account(self):
        __, recovered = self._recover(service="rec3")
        qhd = next(t for t in recovered.tracks if t.height == 540)
        assert qhd.playable
        assert qhd.clear_init and qhd.clear_segments
        # Verify with the reference player directly — "played on a PC".
        from repro.media.player import AssetStatus, probe_track

        assert (
            probe_track(qhd.clear_init, qhd.clear_segments).status
            is AssetStatus.CLEAR
        )

    def test_clear_audio_copied_through(self):
        __, recovered = self._recover(
            service="rec4", audio_protection=AudioProtection.CLEAR
        )
        audio = [t for t in recovered.tracks if t.kind == "audio"]
        assert audio
        assert all(t.playable and not t.was_encrypted for t in audio)
        assert all("unencrypted" in t.note for t in audio)

    def test_subtitles_recovered(self):
        __, recovered = self._recover(service="rec5")
        subs = [t for t in recovered.tracks if t.kind == "text"]
        assert subs
        assert all(t.playable for t in subs)

    def test_no_keys_no_video(self):
        profile, network, authority, backend = _world(service="rec6")
        title_id = next(iter(backend.catalog)).title_id
        packaged = backend.packaged[title_id]
        mpd_url = f"https://{profile.cdn_host}{packaged.mpd_path}"
        recovered = MediaRecoveryPipeline(network).recover(
            profile.service, mpd_url, {}
        )
        assert not recovered.succeeded
