"""Protocol messages: serialization round trips and malformed input."""

import json

import pytest

from repro.license_server.protocol import (
    KeyControl,
    LicenseRequest,
    LicenseResponse,
    ProtocolError,
    ProvisionRequest,
    ProvisionResponse,
    WrappedKey,
    canonical_bytes,
)


def _provision_request() -> ProvisionRequest:
    return ProvisionRequest(
        device_id=bytes(32),
        nonce=bytes(16),
        cdm_version="3.1.0",
        security_level="L3",
        mac=bytes(32),
    )


def _license_request() -> LicenseRequest:
    return LicenseRequest(
        session_id=b"\x00\x00\x00\x01",
        device_id=bytes(32),
        rsa_fingerprint=bytes(32),
        pssh_data=b"pssh",
        nonce=bytes(16),
        cdm_version="15.0.0",
        security_level="L1",
        device_model="Pixel 6",
        signature=bytes(256),
    )


def _license_response() -> LicenseResponse:
    return LicenseResponse(
        session_id=b"\x00\x00\x00\x01",
        wrapped_session_key=bytes(256),
        derivation_context=b"context",
        keys=[
            WrappedKey(
                key_id=bytes(16),
                iv=bytes(16),
                wrapped_key=bytes(32),
                control=KeyControl(max_height=540, require_security_level=None),
            ),
            WrappedKey(
                key_id=bytes([1]) * 16,
                iv=bytes(16),
                wrapped_key=bytes(32),
                control=KeyControl(max_height=1080, require_security_level="L1"),
            ),
        ],
        mac=bytes(32),
    )


class TestRoundTrips:
    def test_provision_request(self):
        parsed = ProvisionRequest.parse(_provision_request().serialize())
        assert parsed == _provision_request()

    def test_provision_response(self):
        original = ProvisionResponse(
            device_id=bytes(32),
            iv=bytes(16),
            wrapped_rsa_key=bytes(64),
            mac=bytes(32),
        )
        assert ProvisionResponse.parse(original.serialize()) == original

    def test_license_request(self):
        assert LicenseRequest.parse(_license_request().serialize()) == _license_request()

    def test_license_response(self):
        parsed = LicenseResponse.parse(_license_response().serialize())
        assert parsed.session_id == b"\x00\x00\x00\x01"
        assert len(parsed.keys) == 2
        assert parsed.keys[1].control.require_security_level == "L1"
        assert parsed.keys[0].control.max_height == 540

    def test_signing_payload_excludes_mac(self):
        request = _provision_request()
        payload = json.loads(request.signing_payload())
        assert "mac" not in payload
        full = json.loads(request.serialize())
        assert "mac" in full

    def test_signing_payload_excludes_signature(self):
        payload = json.loads(_license_request().signing_payload())
        assert "signature" not in payload

    def test_signing_payload_stable_under_mac_change(self):
        request = _provision_request()
        before = request.signing_payload()
        request.mac = bytes([1]) * 32
        assert request.signing_payload() == before


class TestMalformed:
    def test_not_json(self):
        with pytest.raises(ProtocolError, match="not a protocol message"):
            ProvisionRequest.parse(b"\xff\xfe binary")

    def test_wrong_type(self):
        blob = _provision_request().serialize()
        with pytest.raises(ProtocolError, match="expected message type"):
            LicenseRequest.parse(blob)

    def test_json_array_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            ProvisionRequest.parse(b"[1,2,3]")

    def test_missing_field(self):
        payload = json.loads(_provision_request().serialize())
        del payload["nonce"]
        with pytest.raises(ProtocolError, match="missing field 'nonce'"):
            ProvisionRequest.parse(json.dumps(payload).encode())

    def test_bad_hex_field(self):
        payload = json.loads(_provision_request().serialize())
        payload["device_id"] = "zz"
        with pytest.raises(ProtocolError, match="not valid hex"):
            ProvisionRequest.parse(json.dumps(payload).encode())

    def test_canonical_bytes_sorted(self):
        a = canonical_bytes({"b": 1, "a": 2})
        b = canonical_bytes({"a": 2, "b": 1})
        assert a == b


class TestKeyControl:
    def test_round_trip(self):
        control = KeyControl(
            max_height=720, require_security_level="L1", license_duration_s=3600
        )
        assert KeyControl.from_json(control.to_json()) == control

    def test_defaults(self):
        control = KeyControl.from_json({})
        assert control.max_height is None
        assert control.require_security_level is None
        assert control.license_duration_s is None


from hypothesis import given
from hypothesis import strategies as st

_bytes16 = st.binary(min_size=16, max_size=16)
_bytes32 = st.binary(min_size=32, max_size=32)


class TestPropertyRoundTrips:
    @given(
        device_id=_bytes32,
        nonce=_bytes16,
        mac=_bytes32,
        version=st.from_regex(r"[0-9]{1,2}\.[0-9]\.[0-9]", fullmatch=True),
    )
    def test_provision_request_any_fields(self, device_id, nonce, mac, version):
        original = ProvisionRequest(
            device_id=device_id,
            nonce=nonce,
            cdm_version=version,
            security_level="L3",
            mac=mac,
        )
        assert ProvisionRequest.parse(original.serialize()) == original

    @given(
        session_id=st.binary(min_size=4, max_size=4),
        pssh=st.binary(max_size=64),
        signature=st.binary(max_size=256),
        model=st.text(
            alphabet=st.characters(
                whitelist_categories=("Lu", "Ll", "Nd"), max_codepoint=127
            ),
            max_size=20,
        ),
    )
    def test_license_request_any_fields(self, session_id, pssh, signature, model):
        original = LicenseRequest(
            session_id=session_id,
            device_id=bytes(32),
            rsa_fingerprint=bytes(32),
            pssh_data=pssh,
            nonce=bytes(16),
            cdm_version="15.0.0",
            security_level="L1",
            device_model=model,
            signature=signature,
        )
        assert LicenseRequest.parse(original.serialize()) == original

    @given(
        kids=st.lists(_bytes16, min_size=0, max_size=4),
        duration=st.one_of(st.none(), st.integers(min_value=0, max_value=10**6)),
    )
    def test_license_response_any_keys(self, kids, duration):
        original = LicenseResponse(
            session_id=bytes(4),
            wrapped_session_key=bytes(128),
            derivation_context=b"ctx",
            keys=[
                WrappedKey(
                    key_id=kid,
                    iv=bytes(16),
                    wrapped_key=bytes(32),
                    control=KeyControl(license_duration_s=duration),
                )
                for kid in kids
            ],
            mac=bytes(32),
        )
        parsed = LicenseResponse.parse(original.serialize())
        assert parsed == original
