"""Head-based sampling: deterministic per-root decisions, root-span
atomicity, exactness of counters/histograms at any rate, parallel-merge
byte-identity, and the never-silent export record."""

from __future__ import annotations

import json

import pytest

from repro.core.parallel import ParallelStudyRunner
from repro.core.study import WideLeakStudy
from repro.obs.bus import ObservabilityBus
from repro.obs.export import to_chrome_trace, to_jsonl
from repro.obs.sampling import TraceSampler, parse_rate
from repro.ott.registry import ALL_PROFILES

SUBSET = ALL_PROFILES[:3]
# Seed 2 @ 1/2 keeps Netflix and Hulu of the synthetic pipeline's four
# apps — a mixed verdict, which is what the tree-atomicity and export
# tests below want to exercise. (The study-level tests use seed 0,
# which is mixed over SUBSET's real app names.)
MIXED_SAMPLER = TraceSampler(2, seed=2)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0

    def __call__(self) -> int:
        self.now += 1000
        return self.now


def run_pipeline(bus: ObservabilityBus) -> None:
    """A synthetic four-app study shape."""
    for app in ("Netflix", "Hulu", "Starz", "OCS"):
        with bus.span("study.app", app=app) as root:
            root.event("boot")
            with bus.span("license.exchange"):
                bus.count("license.issued")
            with bus.span("audit.content"):
                bus.count("http.requests", 3)
        bus.observe("frames", 24)


class TestRateParsing:
    @pytest.mark.parametrize("spec,expected", [("1/4", 4), ("1/1", 1), ("16", 16)])
    def test_valid_specs(self, spec, expected):
        assert parse_rate(spec) == expected
        assert TraceSampler.from_rate(spec).denominator == expected

    @pytest.mark.parametrize("spec", ["2/4", "1/0", "0", "fast", "1/x", "-1"])
    def test_invalid_specs(self, spec):
        with pytest.raises(ValueError):
            parse_rate(spec)

    def test_rate_renders_back(self):
        assert TraceSampler(4, seed=7).rate == "1/4"


class TestDecisions:
    def test_pure_function_of_seed_rate_and_identity(self):
        a = TraceSampler(4, seed=3)
        b = TraceSampler(4, seed=3)
        for n in range(200):
            attrs = {"app": f"app-{n}"}
            assert a.keep("study.app", attrs) == b.keep("study.app", attrs)

    def test_denominator_one_keeps_everything(self):
        sampler = TraceSampler(1, seed=9)
        assert all(
            sampler.keep("study.app", {"app": f"a{n}"}) for n in range(50)
        )

    def test_keep_frequency_is_roughly_one_in_n(self):
        sampler = TraceSampler(4)
        kept = sum(
            sampler.keep("study.app", {"app": f"app-{n}"}) for n in range(1000)
        )
        assert 150 < kept < 350  # expected 250; deterministic, just loose

    def test_different_attrs_decide_independently(self):
        sampler = TraceSampler(2, seed=0)
        verdicts = {
            name: sampler.keep("study.app", {"app": name})
            for name in ("Netflix", "Disney+", "Amazon Prime Video")
        }
        assert verdicts == {
            "Netflix": True,
            "Disney+": True,
            "Amazon Prime Video": False,
        }


class TestRootSpanAtomicity:
    def test_trees_are_kept_whole_or_dropped_whole(self):
        bus = ObservabilityBus(clock=FakeClock(), sampler=MIXED_SAMPLER)
        run_pipeline(bus)
        kept_roots = {
            s.attrs["app"] for s in bus.spans if s.parent_id is None
        }
        recorded_ids = {s.span_id for s in bus.spans}
        # Every recorded non-root span hangs off a recorded parent: no
        # tree is ever split by sampling.
        assert all(
            s.parent_id in recorded_ids
            for s in bus.spans
            if s.parent_id is not None
        )
        # Each kept tree is complete (root + its two children).
        assert len(bus.spans) == 3 * len(kept_roots)
        snapshot = bus.sampling_snapshot()
        assert snapshot["sampled_roots"] == len(kept_roots)
        assert snapshot["dropped_roots"] == 4 - len(kept_roots)
        assert snapshot["dropped_spans"] == 3 * (4 - len(kept_roots))
        assert 0 < len(kept_roots) < 4  # the seed gives a mixed verdict

    def test_recorded_span_ids_stay_dense(self):
        bus = ObservabilityBus(clock=FakeClock(), sampler=MIXED_SAMPLER)
        run_pipeline(bus)
        assert [s.span_id for s in bus.spans] == list(
            range(1, len(bus.spans) + 1)
        )


class TestExactness:
    def test_counters_and_histograms_match_the_unsampled_run(self):
        full = ObservabilityBus(clock=FakeClock())
        sampled = ObservabilityBus(clock=FakeClock(), sampler=MIXED_SAMPLER)
        run_pipeline(full)
        run_pipeline(sampled)
        assert sampled.metrics.counters() == full.metrics.counters()
        # Histograms observe every closed span — dropped ones included.
        for name, stat in full.metrics.histograms().items():
            other = sampled.metrics.histograms()[name]
            assert (other.count, other.total) == (stat.count, stat.total)
            assert other.buckets == stat.buckets

    def test_dropped_trees_donate_no_exemplars(self):
        bus = ObservabilityBus(clock=FakeClock(), sampler=MIXED_SAMPLER)
        run_pipeline(bus)
        recorded_ids = {s.span_id for s in bus.spans}
        for stat in bus.metrics.histograms().values():
            for _, span_id in stat.exemplars.values():
                assert span_id in recorded_ids

    def test_flow_arrows_survive_inside_dropped_trees(self):
        sampler = TraceSampler(2, seed=0)
        bus = ObservabilityBus(clock=FakeClock(), sampler=sampler)
        seen: list[tuple[str, str, str]] = []
        bus.add_flow_consumer(lambda s, t, label: seen.append((s, t, label)))
        assert not sampler.keep("study.app", {"app": "Amazon Prime Video"})
        with bus.span("study.app", app="Amazon Prime Video"):
            bus.flow("Application", "CDM", "Decrypt()")
        assert seen == [("Application", "CDM", "Decrypt()")]
        assert bus.metrics.counters()["flow.arrows"] == 1
        assert bus.spans == []


class TestExportRecord:
    def test_jsonl_trailing_line_reports_the_drop(self):
        bus = ObservabilityBus(clock=FakeClock(), sampler=MIXED_SAMPLER)
        run_pipeline(bus)
        sampling = json.loads(to_jsonl(bus).strip().split("\n")[-1])
        assert sampling["type"] == "sampling"
        assert sampling["rate"] == "1/2"
        assert sampling["dropped_spans"] > 0
        assert sampling["recorded_spans"] == len(bus.spans)

    def test_chrome_trace_metadata_reports_the_drop(self):
        bus = ObservabilityBus(clock=FakeClock(), sampler=MIXED_SAMPLER)
        run_pipeline(bus)
        events = to_chrome_trace(bus)["traceEvents"]
        sampling = next(e for e in events if e["name"] == "sampling")
        assert sampling["args"]["dropped_spans"] > 0

    def test_clear_resets_the_tally(self):
        bus = ObservabilityBus(clock=FakeClock(), sampler=MIXED_SAMPLER)
        run_pipeline(bus)
        bus.clear()
        snapshot = bus.sampling_snapshot()
        assert snapshot["dropped_spans"] == 0
        assert snapshot["sampled_roots"] == 0
        assert snapshot["recorded_spans"] == 0


class TestStudyByteIdentity:
    """The acceptance bar: for a fixed seed and rate, sequential and
    jobs=3 runs keep the same app trees, and the artifact is
    byte-identical to the unsampled run's."""

    @pytest.fixture(scope="class")
    def runs(self):
        unsampled = WideLeakStudy(profiles=SUBSET).run()
        sequential = WideLeakStudy(
            profiles=SUBSET, sampler=TraceSampler(2, seed=0)
        ).run()
        parallel = ParallelStudyRunner(
            WideLeakStudy(profiles=SUBSET, sampler=TraceSampler(2, seed=0)),
            jobs=3,
        ).run()
        return unsampled, sequential, parallel

    def test_artifact_is_byte_identical_at_any_rate(self, runs):
        unsampled, sequential, parallel = runs
        assert sequential.to_json() == unsampled.to_json()
        assert parallel.to_json() == unsampled.to_json()

    def test_counters_are_exact_at_any_rate(self, runs):
        unsampled, sequential, parallel = runs
        assert (
            sequential.obs.metrics.counters()
            == unsampled.obs.metrics.counters()
            == parallel.obs.metrics.counters()
        )

    def test_same_app_trees_survive_sequential_and_parallel(self, runs):
        _, sequential, parallel = runs
        assert sequential.obs.trees() == parallel.obs.trees()
        assert sequential.obs.span_names() == parallel.obs.span_names()

    def test_sampling_dropped_some_but_not_all_app_roots(self, runs):
        _, sequential, parallel = runs
        kept = {
            s.attrs["app"]
            for s in sequential.obs.spans
            if s.name == "study.app"
        }
        assert kept == {"Netflix", "Disney+"}
        assert (
            sequential.obs.sampling_snapshot()["dropped_spans"]
            == parallel.obs.sampling_snapshot()["dropped_spans"]
            > 0
        )


class TestWideLeakStudyWiring:
    def test_bus_and_sampler_are_mutually_exclusive(self):
        with pytest.raises(ValueError):
            WideLeakStudy(
                profiles=SUBSET,
                obs=ObservabilityBus(),
                sampler=TraceSampler(2),
            )

    def test_worker_sessions_share_the_study_sampler(self):
        from repro.core.parallel import DeviceSession

        study = WideLeakStudy(profiles=SUBSET, sampler=TraceSampler(4, seed=1))
        session = DeviceSession(study)
        assert session.obs.sampler is study.obs.sampler
