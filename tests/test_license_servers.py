"""Provisioning and license servers: grants, denials, revocation,
signature checks — exercised over real protocol bytes."""

import pytest

from repro.bmff.pssh import WidevinePsshData
from repro.crypto.kdf import derive_session_keys
from repro.crypto.rsa import generate_keypair, pss_sign
from repro.license_server.policy import RevocationPolicy
from repro.license_server.protocol import (
    LicenseRequest,
    LicenseResponse,
    ProvisionRequest,
    ProvisionResponse,
)
from repro.license_server.provisioning import (
    KeyboxAuthority,
    ProvisioningRecords,
    ProvisioningServer,
    device_rsa_key,
)
from repro.net.http import HttpRequest
from repro.widevine.keybox import issue_keybox
from repro.widevine.versions import CdmVersion

# Helper building a valid provisioning request the way the CDM does.
import hashlib
import hmac as hmac_mod


def _provision_request(keybox, *, cdm_version="15.0.0", level="L1", tamper=False):
    request = ProvisionRequest(
        device_id=keybox.device_id,
        nonce=bytes(16),
        cdm_version=cdm_version,
        security_level=level,
    )
    payload = request.signing_payload()
    derived = derive_session_keys(keybox.device_key, payload)
    request.mac = hmac_mod.new(derived.mac_client, payload, hashlib.sha256).digest()
    if tamper:
        request.mac = bytes(32)
    return request


def _post(server, path, body):
    return server.handle(
        HttpRequest("POST", f"https://{server.hostname}{path}", body=body)
    )


class TestProvisioningServer:
    @pytest.fixture
    def setup(self):
        authority = KeyboxAuthority()
        records = ProvisioningRecords()
        keybox = issue_keybox("PROV-T1")
        authority.register(keybox, security_level="L1")
        server = ProvisioningServer("prov.t.example", authority, records)
        return authority, records, keybox, server

    def test_happy_path(self, setup):
        __, records, keybox, server = setup
        response = _post(server, "/provision", _provision_request(keybox).serialize())
        assert response.ok
        parsed = ProvisionResponse.parse(response.body)
        assert parsed.device_id == keybox.device_id
        # The device public key is now on record.
        rsa = device_rsa_key(keybox.device_id)
        assert records.public_key(rsa.public.fingerprint()) is not None
        assert records.security_level(rsa.public.fingerprint()) == "L1"

    def test_unknown_device_rejected(self, setup):
        __, __, __, server = setup
        stranger = issue_keybox("UNREGISTERED", root_seed=b"other-root")
        response = _post(
            server, "/provision", _provision_request(stranger).serialize()
        )
        assert response.status == 403
        assert b"unknown device" in response.body

    def test_bad_mac_rejected(self, setup):
        __, __, keybox, server = setup
        response = _post(
            server, "/provision", _provision_request(keybox, tamper=True).serialize()
        )
        assert response.status == 403
        assert b"MAC mismatch" in response.body

    def test_malformed_body_rejected(self, setup):
        __, __, __, server = setup
        assert _post(server, "/provision", b"garbage").status == 400

    def test_revocation_enforced(self):
        authority = KeyboxAuthority()
        keybox = issue_keybox("PROV-REV")
        authority.register(keybox)
        server = ProvisioningServer(
            "prov.rev.example",
            authority,
            ProvisioningRecords(),
            revocation=RevocationPolicy(min_cdm_version=CdmVersion(14)),
        )
        denied = _post(
            server,
            "/provision",
            _provision_request(keybox, cdm_version="3.1.0", level="L3").serialize(),
        )
        assert denied.status == 403
        assert b"revoked" in denied.body
        granted = _post(
            server, "/provision", _provision_request(keybox).serialize()
        )
        assert granted.ok


class TestKeyboxAuthority:
    def test_lookup(self):
        authority = KeyboxAuthority()
        keybox = issue_keybox("AUTH-1")
        authority.register(keybox)
        assert authority.knows(keybox.device_id)
        assert authority.device_key_for(keybox.device_id) == keybox.device_key

    def test_unknown_lookup(self):
        with pytest.raises(LookupError, match="unknown device"):
            KeyboxAuthority().device_key_for(bytes(32))


class TestLicenseServer:
    """License issuance against a real packaged world (conftest)."""

    def _signed_request(self, world, *, level="L1", cdm_version="15.0.0",
                        kids=None, device_serial="LS-T1"):
        keybox = issue_keybox(device_serial)
        world.authority.register(keybox)
        rsa = device_rsa_key(keybox.device_id)
        world.records.record(rsa.public, level)
        pssh = WidevinePsshData(
            key_ids=kids if kids is not None else sorted(world.packaged.content_keys),
            provider="svc",
        )
        request = LicenseRequest(
            session_id=b"\x00\x00\x00\x09",
            device_id=keybox.device_id,
            rsa_fingerprint=rsa.public.fingerprint(),
            pssh_data=pssh.serialize(),
            nonce=bytes(16),
            cdm_version=cdm_version,
            security_level=level,
            device_model="Test Device",
        )
        request.signature = pss_sign(rsa, request.signing_payload())
        return request, rsa

    def test_l1_gets_all_keys(self, world):
        request, __ = self._signed_request(world)
        response = _post(world.license_server, "/license", request.serialize())
        assert response.ok
        parsed = LicenseResponse.parse(response.body)
        assert len(parsed.keys) == len(world.packaged.content_keys)

    def test_l3_denied_hd_keys(self, world):
        request, __ = self._signed_request(world, level="L3")
        response = _post(world.license_server, "/license", request.serialize())
        parsed = LicenseResponse.parse(response.body)
        granted = {k.key_id for k in parsed.keys}
        assert world.packaged.kid_by_rep["v1080"] not in granted
        assert world.packaged.kid_by_rep["v720"] not in granted
        assert world.packaged.kid_by_rep["v540"] in granted

    def test_unknown_certificate_rejected(self, world):
        request, __ = self._signed_request(world)
        request.rsa_fingerprint = bytes(32)
        request.signature = bytes(256)
        response = _post(world.license_server, "/license", request.serialize())
        assert response.status == 403
        assert b"unknown device certificate" in response.body

    def test_bad_signature_rejected(self, world):
        request, __ = self._signed_request(world)
        request.device_model = "Tampered"
        response = _post(world.license_server, "/license", request.serialize())
        assert response.status == 403
        assert b"bad request signature" in response.body
        assert world.license_server.denied_requests

    def test_no_grantable_keys(self, world):
        request, __ = self._signed_request(world, kids=[bytes(16)])
        response = _post(world.license_server, "/license", request.serialize())
        assert response.status == 403
        assert b"no grantable keys" in response.body

    def test_session_record_kept(self, world):
        request, __ = self._signed_request(world)
        _post(world.license_server, "/license", request.serialize())
        record = world.license_server.sessions[b"\x00\x00\x00\x09"]
        assert record.derived.generic_encryption

    def test_response_mac_verifies(self, world):
        from repro.crypto.rsa import oaep_decrypt

        request, rsa = self._signed_request(world)
        response = _post(world.license_server, "/license", request.serialize())
        parsed = LicenseResponse.parse(response.body)
        session_key = oaep_decrypt(rsa, parsed.wrapped_session_key)
        derived = derive_session_keys(session_key, parsed.derivation_context)
        expected = hmac_mod.new(
            derived.mac_server, parsed.signing_payload(), hashlib.sha256
        ).digest()
        assert expected == parsed.mac

    def test_revoked_cdm_denied(self):
        from tests.conftest import ServiceWorld

        world = ServiceWorld(
            revocation=RevocationPolicy(min_cdm_version=CdmVersion(14)),
            service="revsvc",
        )
        request, __ = self._signed_request(
            world, level="L3", cdm_version="3.1.0", device_serial="LS-REV"
        )
        response = _post(world.license_server, "/license", request.serialize())
        assert response.status == 403
        assert b"revoked" in response.body

    def test_register_key_conflict_detected(self, world):
        from repro.license_server.server import RegisteredKey

        kid = next(iter(world.packaged.content_keys))
        with pytest.raises(ValueError, match="conflicting key material"):
            # Re-register the same packaged title with a different key.
            packaged = world.packaged
            original = packaged.content_keys[kid]
            packaged.content_keys[kid] = bytes(16) if original != bytes(16) else bytes([1]) * 16
            try:
                world.license_server.register_packaged_title(packaged, world.title)
            finally:
                packaged.content_keys[kid] = original
